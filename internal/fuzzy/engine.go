// Package fuzzy implements the Mamdani fuzzy-inference machinery behind
// the paper's LC_FUZZY run-time thermal controller ([15], Sabry et al.,
// ICCAD 2010): trapezoidal/triangular membership functions, a min/max
// rule base, and centroid defuzzification. The generic engine lives here;
// the concrete controller (inputs: junction temperature and utilization;
// outputs: coolant flow level and DVFS setting) is built on top in
// controller.go.
package fuzzy

import (
	"errors"
	"fmt"
	"math"
)

// MF is a trapezoidal membership function with shoulder points a ≤ b ≤
// c ≤ d; b == c yields a triangle. Membership is 0 outside [a, d] and 1
// on [b, c].
type MF struct {
	Name       string
	A, B, C, D float64
}

// Tri builds a triangular membership function.
func Tri(name string, a, b, c float64) MF { return MF{Name: name, A: a, B: b, C: b, D: c} }

// Trap builds a trapezoidal membership function.
func Trap(name string, a, b, c, d float64) MF { return MF{Name: name, A: a, B: b, C: c, D: d} }

// Validate checks the shoulder ordering.
func (m MF) Validate() error {
	if !(m.A <= m.B && m.B <= m.C && m.C <= m.D) {
		return fmt.Errorf("fuzzy: membership %q shoulders not ordered: %v %v %v %v", m.Name, m.A, m.B, m.C, m.D)
	}
	return nil
}

// Degree returns the membership of x in [0, 1].
func (m MF) Degree(x float64) float64 {
	switch {
	case x < m.A || x > m.D:
		return 0
	case x >= m.B && x <= m.C:
		return 1
	case x < m.B:
		if m.B == m.A {
			return 1
		}
		return (x - m.A) / (m.B - m.A)
	default:
		if m.D == m.C {
			return 1
		}
		return (m.D - x) / (m.D - m.C)
	}
}

// Variable is a linguistic variable over the universe [Min, Max].
type Variable struct {
	Name     string
	Min, Max float64
	Terms    []MF
}

// Validate checks the variable's terms.
func (v *Variable) Validate() error {
	if v.Max <= v.Min {
		return fmt.Errorf("fuzzy: variable %q empty universe", v.Name)
	}
	if len(v.Terms) == 0 {
		return fmt.Errorf("fuzzy: variable %q has no terms", v.Name)
	}
	seen := map[string]bool{}
	for _, t := range v.Terms {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("fuzzy: variable %q duplicate term %q", v.Name, t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// Term looks up a term by name.
func (v *Variable) Term(name string) (MF, bool) {
	for _, t := range v.Terms {
		if t.Name == name {
			return t, true
		}
	}
	return MF{}, false
}

// clampU clamps x to the variable's universe.
func (v *Variable) clampU(x float64) float64 {
	return math.Min(math.Max(x, v.Min), v.Max)
}

// Cond is one antecedent clause "Var is Term".
type Cond struct{ Var, Term string }

// Assign is one consequent clause "Var is Term".
type Assign struct{ Var, Term string }

// Rule combines antecedents with AND (min) and asserts the consequents at
// the resulting activation.
type Rule struct {
	If   []Cond
	Then []Assign
}

// Engine is a Mamdani fuzzy inference system.
type Engine struct {
	inputs  map[string]*Variable
	outputs map[string]*Variable
	rules   []Rule
}

// NewEngine validates and assembles an engine.
func NewEngine(inputs, outputs []*Variable, rules []Rule) (*Engine, error) {
	e := &Engine{
		inputs:  map[string]*Variable{},
		outputs: map[string]*Variable{},
		rules:   append([]Rule(nil), rules...),
	}
	for _, v := range inputs {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		e.inputs[v.Name] = v
	}
	for _, v := range outputs {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		e.outputs[v.Name] = v
	}
	if len(e.inputs) == 0 || len(e.outputs) == 0 || len(rules) == 0 {
		return nil, errors.New("fuzzy: engine needs inputs, outputs and rules")
	}
	for ri, r := range rules {
		if len(r.If) == 0 || len(r.Then) == 0 {
			return nil, fmt.Errorf("fuzzy: rule %d empty", ri)
		}
		for _, c := range r.If {
			v, ok := e.inputs[c.Var]
			if !ok {
				return nil, fmt.Errorf("fuzzy: rule %d references unknown input %q", ri, c.Var)
			}
			if _, ok := v.Term(c.Term); !ok {
				return nil, fmt.Errorf("fuzzy: rule %d: input %q has no term %q", ri, c.Var, c.Term)
			}
		}
		for _, a := range r.Then {
			v, ok := e.outputs[a.Var]
			if !ok {
				return nil, fmt.Errorf("fuzzy: rule %d references unknown output %q", ri, a.Var)
			}
			if _, ok := v.Term(a.Term); !ok {
				return nil, fmt.Errorf("fuzzy: rule %d: output %q has no term %q", ri, a.Var, a.Term)
			}
		}
	}
	return e, nil
}

// defuzzSamples is the centroid integration resolution.
const defuzzSamples = 201

// Infer runs one Mamdani inference: fuzzify crisp inputs, fire every rule
// with min-AND, aggregate clipped consequents with max, and defuzzify by
// centroid. Inputs outside a variable's universe are clamped. Missing
// inputs are an error; outputs with no activated rule default to the
// centre of their universe.
func (e *Engine) Infer(in map[string]float64) (map[string]float64, error) {
	for name := range e.inputs {
		if _, ok := in[name]; !ok {
			return nil, fmt.Errorf("fuzzy: missing input %q", name)
		}
	}
	// activation[outVar][term] = max over rules of the rule strength.
	activation := map[string]map[string]float64{}
	for name := range e.outputs {
		activation[name] = map[string]float64{}
	}
	for _, r := range e.rules {
		strength := 1.0
		for _, c := range r.If {
			v := e.inputs[c.Var]
			term, _ := v.Term(c.Term)
			d := term.Degree(v.clampU(in[c.Var]))
			if d < strength {
				strength = d
			}
		}
		if strength <= 0 {
			continue
		}
		for _, a := range r.Then {
			if strength > activation[a.Var][a.Term] {
				activation[a.Var][a.Term] = strength
			}
		}
	}
	out := map[string]float64{}
	for name, v := range e.outputs {
		act := activation[name]
		num, den := 0.0, 0.0
		for i := 0; i < defuzzSamples; i++ {
			x := v.Min + (v.Max-v.Min)*float64(i)/float64(defuzzSamples-1)
			mu := 0.0
			for termName, a := range act {
				t, _ := v.Term(termName)
				m := math.Min(t.Degree(x), a)
				if m > mu {
					mu = m
				}
			}
			num += mu * x
			den += mu
		}
		if den == 0 {
			out[name] = (v.Min + v.Max) / 2
		} else {
			out[name] = num / den
		}
	}
	return out, nil
}
