package tsv_test

import (
	"fmt"

	"repro/internal/tsv"
)

// Electrical figures of the smallest first-generation demonstrator via.
func ExampleVia_Resistance() {
	via := tsv.Via{Diameter: 40e-6, Depth: 380e-6, Liner: 200e-9}
	fmt.Printf("R = %.2f mΩ, C = %.1f pF, EM limit %.1f A\n",
		via.Resistance(25)*1e3, via.LinerCapacitance()*1e12, via.MaxCurrent())
	// Output: R = 5.28 mΩ, C = 8.2 pF, EM limit 6.2 A
}

// The §II-C constraint: how wide may a micro-channel be between TSV
// rows at the Table-I pitch?
func ExampleArray_MaxChannelWidth() {
	arr := tsv.Array{
		Via:   tsv.Via{Diameter: 40e-6, Depth: 380e-6, Liner: 200e-9},
		Pitch: 150e-6,
		KOZ:   10e-6,
	}
	fmt.Printf("max channel width: %.0f µm\n", arr.MaxChannelWidth()*1e6)
	// Output: max channel width: 90 µm
}
