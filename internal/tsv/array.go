package tsv

import (
	"errors"
	"fmt"
	"math"
)

// Array is a regular square grid of identical TSVs at the given pitch,
// with a keep-out zone (KOZ) around every via in which neither devices
// nor micro-channel walls may be placed. §II-C: "The only geometrical
// constraints are the implemented TSVs, which need to be embedded into
// the heat transfer structure".
type Array struct {
	Via   Via
	Pitch float64 // centre-to-centre spacing (m)
	KOZ   float64 // keep-out annulus width around the opening (m)
}

// Validate reports whether the array is manufacturable: vias must fit
// inside their pitch cell including the keep-out zone.
func (a Array) Validate() error {
	if err := a.Via.Validate(); err != nil {
		return err
	}
	if a.Pitch <= 0 {
		return errors.New("tsv: pitch must be positive")
	}
	if a.KOZ < 0 {
		return errors.New("tsv: keep-out zone must be non-negative")
	}
	if occ := a.Via.Diameter + 2*a.KOZ; occ >= a.Pitch {
		return fmt.Errorf("tsv: via+KOZ footprint %.3g m exceeds pitch %.3g m",
			occ, a.Pitch)
	}
	return nil
}

// CuFraction returns the copper area density φ: copper cross-section per
// pitch cell. This is the figure fed to thermal.StackOptions.TSVDensity.
func (a Array) CuFraction() float64 {
	return a.Via.ConductorArea() / (a.Pitch * a.Pitch)
}

// KOZFraction returns the fraction of tier area lost to vias plus
// keep-out zones — the floorplanning overhead of the TSV array.
func (a Array) KOZFraction() float64 {
	r := a.Via.Diameter/2 + a.KOZ
	f := math.Pi * r * r / (a.Pitch * a.Pitch)
	return math.Min(f, 1)
}

// PerArea returns the via count per unit tier area (1/m²).
func (a Array) PerArea() float64 { return 1 / (a.Pitch * a.Pitch) }

// MaxChannelWidth returns the widest micro-channel that fits between two
// TSV rows at this pitch (§II-C: "the maximal channel width, given by
// the TSV spacing, should only be reduced at locations where the maximal
// junction temperature would be exceeded").
func (a Array) MaxChannelWidth() float64 {
	return a.Pitch - a.Via.Diameter - 2*a.KOZ
}

// VerticalConductivity returns the effective through-stack thermal
// conductivity (W/(m·K)) of a slab of the given base conductivity
// penetrated by the array's copper vias: the parallel (arithmetic) rule,
// exact for transport along the via axis.
func (a Array) VerticalConductivity(kBase float64) float64 {
	phi := a.CuFraction()
	return (1-phi)*kBase + phi*KCu
}

// InPlaneConductivity returns the effective lateral conductivity
// (W/(m·K)) from the Maxwell-Garnett rule for a dilute array of parallel
// cylinders, exact to first order in the copper fraction.
func (a Array) InPlaneConductivity(kBase float64) float64 {
	phi := a.CuFraction()
	kp := KCu
	return kBase * ((1+phi)*kp + (1-phi)*kBase) / ((1-phi)*kp + (1+phi)*kBase)
}

// VolumetricHeatCapacity returns the effective volumetric heat capacity
// (J/(m³·K)) of a slab with base capacity cBase: the volume-weighted
// mixture rule (exact).
func (a Array) VolumetricHeatCapacity(cBase float64) float64 {
	phi := a.CuFraction()
	return (1-phi)*cBase + phi*CCu
}

// Demonstrator returns the array used by the §II-B test-vehicle
// discussion for a given via: pitch at 3 diameters (a typical daisy-chain
// test layout) and a quarter-diameter keep-out.
func Demonstrator(v Via) Array {
	return Array{Via: v, Pitch: 3 * v.Diameter, KOZ: v.Diameter / 4}
}
