package tsv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func demoVia() Via { return Via{Diameter: 40e-6, Depth: 380e-6, Liner: 200e-9} }

func TestViaValidate(t *testing.T) {
	if err := demoVia().Validate(); err != nil {
		t.Fatalf("demonstrator via rejected: %v", err)
	}
	bad := []Via{
		{Diameter: 0, Depth: 380e-6},
		{Diameter: 40e-6, Depth: 0},
		{Diameter: 40e-6, Depth: 380e-6, Liner: -1e-9},
		{Diameter: 40e-6, Depth: 380e-6, Liner: 25e-6}, // liner eats the opening
		{Diameter: 10e-6, Depth: 380e-6},               // aspect ratio 38 > 15
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: invalid via %+v accepted", i, v)
		}
	}
}

func TestFirstGenerationAllValid(t *testing.T) {
	gen := FirstGeneration()
	if len(gen) != 4 {
		t.Fatalf("expected 4 demonstrator diameters, got %d", len(gen))
	}
	for _, v := range gen {
		if err := v.Validate(); err != nil {
			t.Errorf("demonstrator %v: %v", v.Diameter, err)
		}
		if v.Depth != 380e-6 {
			t.Errorf("demonstrator depth %v, want 380 µm wafer", v.Depth)
		}
	}
}

func TestViaResistanceScale(t *testing.T) {
	// A fully-filled 40 µm × 380 µm Cu via is a few mΩ.
	r := demoVia().Resistance(20)
	if r < 1e-3 || r > 20e-3 {
		t.Fatalf("40 µm via resistance %.3g Ω outside the mΩ regime", r)
	}
	// ρ(T) rises with temperature.
	if hot := demoVia().Resistance(85); hot <= r {
		t.Fatalf("resistance should rise with temperature: %g at 85C vs %g at 20C", hot, r)
	}
}

func TestViaResistanceDiameterMonotonic(t *testing.T) {
	gen := FirstGeneration()
	for i := 1; i < len(gen); i++ {
		if gen[i].Resistance(20) >= gen[i-1].Resistance(20) {
			t.Fatalf("resistance must fall with diameter: %v vs %v",
				gen[i].Resistance(20), gen[i-1].Resistance(20))
		}
	}
}

func TestLinerCapacitanceThinOxideLimit(t *testing.T) {
	v := demoVia()
	got := v.LinerCapacitance()
	// For t_ox << r the coaxial formula approaches the parallel-plate
	// value ε·(2πrL)/t_ox.
	r := v.ConductorRadius()
	plate := EpsSiO2 * 2 * math.Pi * r * v.Depth / v.Liner
	if math.Abs(got-plate)/plate > 0.02 {
		t.Fatalf("coaxial %.4g F vs thin-oxide limit %.4g F: disagree > 2%%", got, plate)
	}
	if v2 := (Via{Diameter: 40e-6, Depth: 380e-6}); !math.IsInf(v2.LinerCapacitance(), 1) {
		t.Fatal("zero liner should read as infinite (shorted) capacitance")
	}
}

func TestRCDelayPositiveAndTiny(t *testing.T) {
	d := demoVia().RCDelay(20)
	if d <= 0 || d > 1e-9 {
		t.Fatalf("TSV RC delay %.3g s should be sub-nanosecond", d)
	}
}

func TestMaxCurrent(t *testing.T) {
	i := demoVia().MaxCurrent()
	// 40 µm via at 5e9 A/m² carries amps.
	if i < 1 || i > 100 {
		t.Fatalf("EM-limited current %.3g A implausible", i)
	}
}

func TestArrayValidate(t *testing.T) {
	a := Demonstrator(demoVia())
	if err := a.Validate(); err != nil {
		t.Fatalf("demonstrator array rejected: %v", err)
	}
	bad := []Array{
		{Via: demoVia(), Pitch: 0},
		{Via: demoVia(), Pitch: 100e-6, KOZ: -1e-6},
		{Via: demoVia(), Pitch: 50e-6, KOZ: 10e-6}, // 40+20 ≥ 50
	}
	for i, arr := range bad {
		if err := arr.Validate(); err == nil {
			t.Errorf("case %d: invalid array accepted", i)
		}
	}
}

func TestArrayFractionsAndChannelConstraint(t *testing.T) {
	a := Demonstrator(demoVia()) // 40 µm via, 120 µm pitch, 10 µm KOZ
	phi := a.CuFraction()
	if phi <= 0 || phi >= 0.1 {
		t.Fatalf("Cu fraction %.4f outside the dilute regime", phi)
	}
	if koz := a.KOZFraction(); koz <= phi {
		t.Fatalf("KOZ fraction %.4f must exceed Cu fraction %.4f", koz, phi)
	}
	w := a.MaxChannelWidth()
	want := 120e-6 - 40e-6 - 2*10e-6
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("max channel width %.3g, want %.3g", w, want)
	}
}

func TestEffectiveConductivityBounds(t *testing.T) {
	a := Demonstrator(demoVia())
	kz := a.VerticalConductivity(KSi)
	kxy := a.InPlaneConductivity(KSi)
	if kz <= KSi || kz >= KCu {
		t.Fatalf("vertical k_eff %.1f must lie between silicon and copper", kz)
	}
	if kxy <= KSi || kxy >= kz {
		t.Fatalf("in-plane k_eff %.1f must lie between base and the parallel bound %.1f", kxy, kz)
	}
	if c := a.VolumetricHeatCapacity(1.63566e6); c <= 1.63566e6 || c >= CCu {
		t.Fatalf("effective capacity %.4g outside mixture bounds", c)
	}
}

func TestEffectiveConductivityProperty(t *testing.T) {
	// Wiener bounds: for any valid array and base conductivity below
	// copper's, series ≤ in-plane ≤ vertical (parallel) must hold.
	f := func(dIdx uint8, pitchMul, kozMul, kFrac float64) bool {
		gen := FirstGeneration()
		v := gen[int(dIdx)%len(gen)]
		pm := 2.5 + math.Mod(math.Abs(pitchMul), 5) // pitch 2.5–7.5 diameters
		km := math.Mod(math.Abs(kozMul), 0.4)       // KOZ 0–0.4 diameters
		a := Array{Via: v, Pitch: pm * v.Diameter, KOZ: km * v.Diameter}
		if a.Validate() != nil {
			return true // skip unbuildable combinations
		}
		kBase := 1 + math.Mod(math.Abs(kFrac), 300) // 1–301 W/mK
		if kBase >= KCu {
			return true
		}
		phi := a.CuFraction()
		series := 1 / ((1-phi)/kBase + phi/KCu)
		kz := a.VerticalConductivity(kBase)
		kxy := a.InPlaneConductivity(kBase)
		return series <= kxy+1e-9 && kxy <= kz+1e-9 && kz < KCu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDaisyChainResistance(t *testing.T) {
	c, err := NewDaisyChain(demoVia(), 100)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Resistance(20)
	perVia := c.Via.Resistance(20)
	perLink := c.LinkResistance(20)
	want := 100*perVia + 99*perLink
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("chain resistance %.6g, want %.6g", r, want)
	}
	if perLink <= perVia {
		t.Fatalf("thin-film link (%.3g Ω) should dominate the Cu via (%.3g Ω)", perLink, perVia)
	}
}

func TestDaisyChainValidate(t *testing.T) {
	if _, err := NewDaisyChain(demoVia(), 0); err == nil {
		t.Fatal("zero-via chain accepted")
	}
	c := &DaisyChain{Via: demoVia(), N: 10, LinkLength: 0, LinkWidth: 1e-6, LinkThickness: 1e-6}
	if err := c.Validate(); err == nil {
		t.Fatal("zero-length link accepted")
	}
}

func TestDaisyChainYield(t *testing.T) {
	c, _ := NewDaisyChain(demoVia(), 100)
	if y := c.Yield(0); y != 1 {
		t.Fatalf("defect-free yield %v, want 1", y)
	}
	if y := c.Yield(-1); y != 1 {
		t.Fatalf("negative defect density should clamp to unity yield, got %v", y)
	}
	y1 := c.Yield(1e6)
	y2 := c.Yield(1e7)
	if !(y2 < y1 && y1 < 1) {
		t.Fatalf("yield must fall with defect density: %v, %v", y1, y2)
	}
	// Larger vias intercept more defects.
	big, _ := NewDaisyChain(Via{Diameter: 100e-6, Depth: 380e-6, Liner: 200e-9}, 100)
	if big.Yield(1e6) >= c.Yield(1e6) {
		t.Fatal("100 µm chain should yield worse than 40 µm at equal defect density")
	}
}

func TestMeasureDeterministicUnderSeed(t *testing.T) {
	c, _ := NewDaisyChain(demoVia(), 50)
	m1 := c.Measure(rand.New(rand.NewSource(7)), 1e5, 0.05, 25)
	m2 := c.Measure(rand.New(rand.NewSource(7)), 1e5, 0.05, 25)
	if m1 != m2 {
		t.Fatalf("same seed produced different measurements: %+v vs %+v", m1, m2)
	}
}

func TestCharacterizeStatistics(t *testing.T) {
	c, _ := NewDaisyChain(demoVia(), 100)
	rng := rand.New(rand.NewSource(42))
	ch, err := c.Characterize(rng, 200, 5e5, 0.03, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Chains != 200 {
		t.Fatalf("chains %d, want 200", ch.Chains)
	}
	if ch.OpenCount == 0 || ch.OpenCount == 200 {
		t.Fatalf("at d0=5e5 some but not all chains should fail open; got %d/200", ch.OpenCount)
	}
	if rel := math.Abs(ch.MeanOhms-ch.IdealOhms) / ch.IdealOhms; rel > 0.05 {
		t.Fatalf("mean %.4g strays %.1f%% from ideal %.4g", ch.MeanOhms, rel*100, ch.IdealOhms)
	}
	if ch.StdOhms <= 0 {
		t.Fatal("spread should be positive with sigma > 0")
	}
	if y := ch.YieldPct(); y <= 0 || y >= 100 {
		t.Fatalf("yield %.1f%% should be interior", y)
	}
}

func TestCharacterizeErrors(t *testing.T) {
	c, _ := NewDaisyChain(demoVia(), 10)
	if _, err := c.Characterize(rand.New(rand.NewSource(1)), 0, 0, 0, 25); err == nil {
		t.Fatal("zero-chain campaign accepted")
	}
	bad := &DaisyChain{Via: Via{}, N: 10, LinkLength: 1, LinkWidth: 1, LinkThickness: 1}
	if _, err := bad.Characterize(rand.New(rand.NewSource(1)), 10, 0, 0, 25); err == nil {
		t.Fatal("invalid via accepted")
	}
}

func TestCharacterizeAllOpenIsReportable(t *testing.T) {
	c, _ := NewDaisyChain(demoVia(), 100)
	ch, err := c.Characterize(rand.New(rand.NewSource(3)), 50, 1e9, 0.03, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ch.OpenCount != 50 || ch.YieldPct() != 0 {
		t.Fatalf("catastrophic defect density should open every chain: %+v", ch)
	}
	if ch.MeanOhms != 0 || ch.StdOhms != 0 {
		t.Fatal("no statistics should accumulate when every chain is open")
	}
}

func TestYieldMatchesMonteCarlo(t *testing.T) {
	c, _ := NewDaisyChain(demoVia(), 50)
	const d0 = 3e5
	rng := rand.New(rand.NewSource(11))
	const n = 4000
	open := 0
	for i := 0; i < n; i++ {
		if c.Measure(rng, d0, 0, 25).Open {
			open++
		}
	}
	got := 1 - float64(open)/n
	want := c.Yield(d0)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("Monte-Carlo yield %.3f vs analytic %.3f", got, want)
	}
}

func TestDemonstratorLayout(t *testing.T) {
	for _, v := range FirstGeneration() {
		a := Demonstrator(v)
		if err := a.Validate(); err != nil {
			t.Errorf("demonstrator array for d=%.0f µm invalid: %v", v.Diameter*1e6, err)
		}
		if a.MaxChannelWidth() <= 0 {
			t.Errorf("demonstrator array for d=%.0f µm leaves no channel room", v.Diameter*1e6)
		}
	}
}
