package tsv

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// DaisyChain is the §II-B electrical-characterization structure: N vias
// connected in series by alternating front-/back-side metal links, probed
// four-wire so the probe resistance drops out.
type DaisyChain struct {
	Via Via
	// N is the number of vias in the chain.
	N int
	// LinkLength is the metal trace length between adjacent vias (m);
	// in the demonstrator layouts this is the array pitch.
	LinkLength float64
	// LinkWidth and LinkThickness describe the Ti/Al interconnect
	// (§II-B: 50 nm Ti / 1500 nm Al, patterned by RIE). The Ti adhesion
	// layer carries negligible current, so the model uses the Al film.
	LinkWidth, LinkThickness float64
}

// NewDaisyChain builds the §II-B demonstrator chain for a via: links one
// pitch long (Demonstrator layout), as wide as the via, 1.5 µm Al.
func NewDaisyChain(v Via, n int) (*DaisyChain, error) {
	c := &DaisyChain{
		Via:           v,
		N:             n,
		LinkLength:    Demonstrator(v).Pitch,
		LinkWidth:     v.Diameter,
		LinkThickness: 1.5e-6,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate reports whether the chain is well-formed.
func (c *DaisyChain) Validate() error {
	if err := c.Via.Validate(); err != nil {
		return err
	}
	switch {
	case c.N <= 0:
		return errors.New("tsv: daisy chain needs at least one via")
	case c.LinkLength <= 0 || c.LinkWidth <= 0 || c.LinkThickness <= 0:
		return errors.New("tsv: link dimensions must be positive")
	}
	return nil
}

// LinkResistance returns the resistance (Ω) of one Al connecting trace at
// the given temperature. Aluminium's temperature coefficient is close to
// copper's; the model reuses AlphaCu.
func (c *DaisyChain) LinkResistance(tempC float64) float64 {
	rho := RhoAl * (1 + AlphaCu*(tempC-20))
	return rho * c.LinkLength / (c.LinkWidth * c.LinkThickness)
}

// Resistance returns the ideal (defect-free) four-wire chain resistance
// (Ω): N vias in series with N−1 links.
func (c *DaisyChain) Resistance(tempC float64) float64 {
	return float64(c.N)*c.Via.Resistance(tempC) +
		float64(c.N-1)*c.LinkResistance(tempC)
}

// Yield returns the probability that the whole chain conducts, under a
// Poisson defect model with density d0 (defects/m², referred to the via
// cross-section): each via is open with probability 1−exp(−d0·A).
func (c *DaisyChain) Yield(d0 float64) float64 {
	if d0 < 0 {
		return 1
	}
	pOK := math.Exp(-d0 * c.Via.ConductorArea())
	return math.Pow(pOK, float64(c.N))
}

// Measurement is one simulated four-wire reading of a fabricated chain.
type Measurement struct {
	// Open reports a broken chain (at least one void/defective via).
	Open bool
	// Ohms is the measured resistance; meaningful only when !Open.
	Ohms float64
}

// Measure simulates probing one fabricated chain at tempC: each via is
// independently open with the Poisson probability for defect density d0,
// via resistances vary log-normally with fractional sigma (plating
// thickness spread), and the reading carries 0.5 % instrument noise.
// The rng makes runs deterministic under a fixed seed.
func (c *DaisyChain) Measure(rng *rand.Rand, d0, sigma, tempC float64) Measurement {
	pOpen := 1 - math.Exp(-d0*c.Via.ConductorArea())
	total := float64(c.N-1) * c.LinkResistance(tempC)
	rVia := c.Via.Resistance(tempC)
	for i := 0; i < c.N; i++ {
		if rng.Float64() < pOpen {
			return Measurement{Open: true}
		}
		total += rVia * math.Exp(sigma*rng.NormFloat64())
	}
	total *= 1 + 0.005*rng.NormFloat64()
	return Measurement{Ohms: total}
}

// Characterization summarises a measurement campaign over one chain
// design, as plotted for the §II-B demonstrators.
type Characterization struct {
	Via       Via
	Chains    int // chains probed
	OpenCount int // chains that failed open
	MeanOhms  float64
	StdOhms   float64
	IdealOhms float64
}

// YieldPct returns the measured chain yield in percent.
func (ch Characterization) YieldPct() float64 {
	if ch.Chains == 0 {
		return 0
	}
	return 100 * float64(ch.Chains-ch.OpenCount) / float64(ch.Chains)
}

// Characterize probes `chains` fabricated copies of the design and
// aggregates the statistics. It returns an error only for invalid
// designs; a campaign in which every chain fails open is a valid (and
// reportable) outcome.
func (c *DaisyChain) Characterize(rng *rand.Rand, chains int, d0, sigma, tempC float64) (Characterization, error) {
	if err := c.Validate(); err != nil {
		return Characterization{}, err
	}
	if chains <= 0 {
		return Characterization{}, fmt.Errorf("tsv: need at least one chain, got %d", chains)
	}
	out := Characterization{Via: c.Via, Chains: chains, IdealOhms: c.Resistance(tempC)}
	var sum, sumSq float64
	good := 0
	for i := 0; i < chains; i++ {
		m := c.Measure(rng, d0, sigma, tempC)
		if m.Open {
			out.OpenCount++
			continue
		}
		good++
		sum += m.Ohms
		sumSq += m.Ohms * m.Ohms
	}
	if good > 0 {
		out.MeanOhms = sum / float64(good)
		if good > 1 {
			v := (sumSq - sum*sum/float64(good)) / float64(good-1)
			if v > 0 {
				out.StdOhms = math.Sqrt(v)
			}
		}
	}
	return out, nil
}
