// Package tsv models the through-silicon-via technology of §II-B of the
// paper: the CMOSAIC first-generation TSV demonstrators (SiO2-insulated,
// fully-filled Cu vias of 40–100 µm diameter in a 380 µm wafer, connected
// in daisy chains for electrical characterization) and the constraints
// TSVs impose on the inter-tier heat-transfer cavity (§II-C: "the
// maximal channel width, given by the TSV spacing").
//
// The package is purely geometric/electrical/effective-medium; the
// thermal package consumes its Density figures via
// thermal.StackOptions.TSVDensity.
package tsv

import (
	"errors"
	"fmt"
	"math"
)

// Physical constants used by the electrical model.
const (
	// RhoCu is the resistivity of electroplated copper at 20 °C (Ω·m).
	RhoCu = 1.68e-8
	// AlphaCu is copper's temperature coefficient of resistivity (1/K).
	AlphaCu = 3.9e-3
	// RhoAl is the resistivity of sputtered aluminium at 20 °C (Ω·m).
	RhoAl = 2.82e-8
	// EpsSiO2 is the permittivity of thermal oxide (F/m): 3.9·ε0.
	EpsSiO2 = 3.9 * 8.8541878128e-12
	// KCu and KSi are thermal conductivities (W/(m·K)).
	KCu = 400.0
	KSi = 130.0
	// CCu is copper's volumetric heat capacity (J/(m³·K)).
	CCu = 3.44e6
	// JMax is a conservative electromigration current-density limit for
	// plated Cu vias (A/m²).
	JMax = 5e9
)

// Via is one SiO2-insulated, fully-filled copper through-silicon via.
// The demonstrators of §II-B use Diameter 40–100 µm, Depth 380 µm
// (full wafer thickness) and a 200 nm thermally-grown oxide liner.
type Via struct {
	// Diameter is the drilled (DRIE) opening diameter (m), including
	// the liner.
	Diameter float64
	// Depth is the via length through the wafer (m).
	Depth float64
	// Liner is the SiO2 sidewall insulation thickness (m).
	Liner float64
}

// Validate reports whether the via geometry is physically meaningful.
func (v Via) Validate() error {
	switch {
	case v.Diameter <= 0:
		return errors.New("tsv: via diameter must be positive")
	case v.Depth <= 0:
		return errors.New("tsv: via depth must be positive")
	case v.Liner < 0:
		return errors.New("tsv: liner thickness must be non-negative")
	case 2*v.Liner >= v.Diameter:
		return fmt.Errorf("tsv: liner (2×%.3g m) consumes the whole %.3g m opening",
			v.Liner, v.Diameter)
	}
	// DRIE aspect-ratio limit: beyond ~15:1 the etch and the conformal
	// liner deposition are out of the demonstrated process window
	// (§II-B lists aspect-ratio limitations among the critical issues).
	if ar := v.AspectRatio(); ar > 15 {
		return fmt.Errorf("tsv: aspect ratio %.1f exceeds DRIE process window (15)", ar)
	}
	return nil
}

// AspectRatio returns depth/diameter.
func (v Via) AspectRatio() float64 { return v.Depth / v.Diameter }

// ConductorRadius returns the radius of the copper fill (m): the opening
// radius minus the oxide liner.
func (v Via) ConductorRadius() float64 { return v.Diameter/2 - v.Liner }

// ConductorArea returns the copper cross-section (m²).
func (v Via) ConductorArea() float64 {
	r := v.ConductorRadius()
	return math.Pi * r * r
}

// Resistance returns the end-to-end DC resistance (Ω) of the copper fill
// at the given temperature (°C). The §II-B demonstrators measure this on
// daisy chains; a 40 µm × 380 µm via is about 5 mΩ at room temperature.
func (v Via) Resistance(tempC float64) float64 {
	rho := RhoCu * (1 + AlphaCu*(tempC-20))
	return rho * v.Depth / v.ConductorArea()
}

// LinerCapacitance returns the coaxial capacitance (F) between the copper
// fill and the silicon substrate across the SiO2 liner.
func (v Via) LinerCapacitance() float64 {
	if v.Liner == 0 {
		return math.Inf(1)
	}
	rIn := v.ConductorRadius()
	rOut := v.Diameter / 2
	return 2 * math.Pi * EpsSiO2 * v.Depth / math.Log(rOut/rIn)
}

// RCDelay returns the intrinsic RC time constant (s) of the via at the
// given temperature — the figure of merit for the paper's claimed 10–100×
// connectivity advantage of 3D stacking over off-chip links.
func (v Via) RCDelay(tempC float64) float64 {
	return v.Resistance(tempC) * v.LinerCapacitance()
}

// MaxCurrent returns the electromigration-limited current (A).
func (v Via) MaxCurrent() float64 { return JMax * v.ConductorArea() }

// ThermalConductance returns the vertical thermal conductance (W/K)
// through the copper fill.
func (v Via) ThermalConductance() float64 {
	return KCu * v.ConductorArea() / v.Depth
}

// FirstGeneration returns the §II-B first-generation demonstrator vias:
// 40, 60, 80 and 100 µm diameters in a 380 µm-thick wafer with the
// 200 nm thermally-grown oxide liner.
func FirstGeneration() []Via {
	out := make([]Via, 0, 4)
	for _, d := range []float64{40e-6, 60e-6, 80e-6, 100e-6} {
		out = append(out, Via{Diameter: d, Depth: 380e-6, Liner: 200e-9})
	}
	return out
}
