// Package fluids is the coolant property library for the CMOSAIC
// reproduction. It covers the coolants the DATE 2011 paper discusses:
//
//   - liquid water (the single-phase baseline, Table I properties),
//   - the low-pressure refrigerants R-134a, R-236fa and R-245fa used for
//     two-phase flow boiling (Agostini et al., Costa-Patry et al.),
//   - engineered nanofluids built from a base liquid and a nanoparticle
//     loading via Maxwell (conductivity) and Einstein (viscosity) mixture
//     rules.
//
// Refrigerant saturation behaviour (Psat(T), Tsat(P), latent heat) is
// provided through small embedded property tables with piecewise-linear
// interpolation; the tables are approximate engineering fits adequate to
// reproduce the paper's trends (Tsat falls with the pressure drop along a
// channel; hfg of common refrigerants is ~150–200 kJ/kg, i.e. far above
// water's sensible 4.2 kJ/(kg·K)).
package fluids

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Fluid holds single-phase transport properties for a liquid coolant,
// evaluated at the reference state noted in the constructor. For the
// micro-channel flows of this paper (laminar, modest temperature rise)
// constant properties are the standard modelling choice.
type Fluid struct {
	Name string
	// Rho is the density in kg/m³.
	Rho float64
	// Cp is the specific heat capacity in J/(kg·K).
	Cp float64
	// K is the thermal conductivity in W/(m·K).
	K float64
	// Mu is the dynamic viscosity in Pa·s.
	Mu float64
	// Sat is non-nil for refrigerants that support two-phase operation.
	Sat *Saturation
}

// Prandtl returns the Prandtl number cp·µ/k.
func (f Fluid) Prandtl() float64 { return f.Cp * f.Mu / f.K }

// VolumetricHeatCapacity returns ρ·cp in J/(m³·K).
func (f Fluid) VolumetricHeatCapacity() float64 { return f.Rho * f.Cp }

// KinematicViscosity returns µ/ρ in m²/s.
func (f Fluid) KinematicViscosity() float64 { return f.Mu / f.Rho }

// Water returns liquid water at ~27 °C with the exact conductivity and
// specific heat used in Table I of the paper (k = 0.6 W/(m·K),
// cp = 4183 J/(kg·K)).
func Water() Fluid {
	return Fluid{
		Name: "water",
		Rho:  997.0,
		Cp:   4183.0,
		K:    0.6,
		Mu:   0.855e-3,
	}
}

// Saturation describes the two-phase saturation curve of a refrigerant via
// tabulated points. Temperatures are in kelvin, pressures in pascal,
// latent heats in J/kg.
type Saturation struct {
	tK   []float64 // ascending saturation temperatures
	pPa  []float64 // corresponding saturation pressures (ascending)
	hfg  []float64 // latent heat of vaporisation at tK
	rhoV []float64 // saturated-vapour density at tK

	// PCrit is the critical pressure in Pa and MolarMass the molar mass
	// in kg/kmol; both feed reduced-pressure boiling correlations
	// (Cooper).
	PCrit     float64
	MolarMass float64
}

// ReducedPressure returns p/p_crit for pressure pPa.
func (s *Saturation) ReducedPressure(pPa float64) float64 { return pPa / s.PCrit }

// Psat returns the saturation pressure (Pa) at temperature tK (K).
func (s *Saturation) Psat(tK float64) float64 {
	return units.Interp1(s.tK, s.pPa, tK)
}

// Tsat returns the saturation temperature (K) at pressure pPa (Pa).
func (s *Saturation) Tsat(pPa float64) float64 {
	return units.Interp1(s.pPa, s.tK, pPa)
}

// Hfg returns the latent heat of vaporisation (J/kg) at temperature tK.
func (s *Saturation) Hfg(tK float64) float64 {
	return units.Interp1(s.tK, s.hfg, tK)
}

// RhoVapor returns the saturated-vapour density (kg/m³) at temperature tK.
func (s *Saturation) RhoVapor(tK float64) float64 {
	return units.Interp1(s.tK, s.rhoV, tK)
}

// DTsatDP returns the local slope dTsat/dP (K/Pa) at pressure pPa,
// estimated by central differencing of the table. It quantifies how much
// the local saturation temperature falls per pascal of channel pressure
// drop — the effect behind the refrigerant exiting colder than it enters.
func (s *Saturation) DTsatDP(pPa float64) float64 {
	dp := pPa * 1e-4
	if dp == 0 {
		dp = 1
	}
	return (s.Tsat(pPa+dp) - s.Tsat(pPa-dp)) / (2 * dp)
}

// TRange returns the temperature span [min,max] (K) covered by the table.
func (s *Saturation) TRange() (lo, hi float64) {
	return s.tK[0], s.tK[len(s.tK)-1]
}

// satTable builds a Saturation from tables in engineering units
// (°C, kPa, kJ/kg, kg/m³), validating monotonicity.
func satTable(name string, pCritPa, molarMass float64, tC, pKPa, hfgKJ, rhoV []float64) *Saturation {
	n := len(tC)
	if len(pKPa) != n || len(hfgKJ) != n || len(rhoV) != n || n < 2 {
		panic(fmt.Sprintf("fluids: %s saturation table shape invalid", name))
	}
	s := &Saturation{
		tK:        make([]float64, n),
		pPa:       make([]float64, n),
		hfg:       make([]float64, n),
		rhoV:      make([]float64, n),
		PCrit:     pCritPa,
		MolarMass: molarMass,
	}
	for i := 0; i < n; i++ {
		s.tK[i] = units.CToK(tC[i])
		s.pPa[i] = pKPa[i] * 1e3
		s.hfg[i] = hfgKJ[i] * 1e3
		s.rhoV[i] = rhoV[i]
		if i > 0 && (s.tK[i] <= s.tK[i-1] || s.pPa[i] <= s.pPa[i-1]) {
			panic(fmt.Sprintf("fluids: %s saturation table not monotone at row %d", name, i))
		}
	}
	return s
}

// R134a returns the refrigerant R-134a (1,1,1,2-tetrafluoroethane) with
// liquid properties near 30 °C. The paper quotes its latent heat as
// "about 150 kJ/kg" at operating conditions; the table spans −20…+70 °C.
func R134a() Fluid {
	return Fluid{
		Name: "R134a",
		Rho:  1187.0,
		Cp:   1447.0,
		K:    0.079,
		Mu:   0.183e-3,
		Sat: satTable("R134a", 4.059e6, 102.03,
			[]float64{-20, 0, 20, 30, 40, 55, 70},
			[]float64{132.7, 292.8, 571.7, 770.2, 1016.6, 1491.6, 2116.2},
			[]float64{212.9, 198.6, 182.3, 173.1, 163.0, 145.2, 121.8},
			[]float64{6.78, 14.43, 27.78, 37.54, 50.09, 74.14, 109.9}),
	}
}

// R236fa returns the low-pressure refrigerant R-236fa
// (1,1,1,3,3,3-hexafluoropropane) tested by Agostini et al. in silicon
// multi-microchannels at heat fluxes up to 255 W/cm².
func R236fa() Fluid {
	return Fluid{
		Name: "R236fa",
		Rho:  1350.0,
		Cp:   1265.0,
		K:    0.074,
		Mu:   0.276e-3,
		Sat: satTable("R236fa", 3.200e6, 152.04,
			[]float64{-10, 0, 10, 25, 30, 45, 60},
			[]float64{77.9, 114.4, 162.7, 272.4, 320.1, 501.8, 749.8},
			[]float64{168.1, 163.2, 157.9, 149.0, 145.9, 135.4, 123.3},
			[]float64{5.16, 7.41, 10.37, 16.65, 19.42, 30.17, 44.87}),
	}
}

// R245fa returns the low-pressure refrigerant R-245fa
// (1,1,1,3,3-pentafluoropropane) used in the 85 µm-channel hot-spot
// experiments of Costa-Patry et al. that Fig. 8 of the paper reports.
// Its normal boiling point is ~15 °C, so Tsat = 30 °C corresponds to a
// convenient ~1.8 bar operating pressure.
func R245fa() Fluid {
	return Fluid{
		Name: "R245fa",
		Rho:  1325.0,
		Cp:   1322.0,
		K:    0.081,
		Mu:   0.376e-3,
		Sat: satTable("R245fa", 3.651e6, 134.05,
			[]float64{0, 10, 20, 30, 40, 55, 70},
			[]float64{53.4, 82.4, 122.7, 177.8, 250.9, 401.4, 610.1},
			[]float64{203.8, 198.3, 192.5, 186.3, 179.6, 168.8, 156.8},
			[]float64{2.92, 4.34, 6.25, 8.77, 12.06, 18.83, 28.44}),
	}
}

// Dielectric returns a generic dielectric liquid (FC-72-like). The paper
// rejects such coolants for single-phase inter-tier cooling because of
// their low volumetric heat capacity and high relative viscosity; this
// fluid exists so that comparison can be demonstrated quantitatively.
func Dielectric() Fluid {
	return Fluid{
		Name: "dielectric",
		Rho:  1680.0,
		Cp:   1100.0,
		K:    0.057,
		Mu:   0.64e-3,
	}
}

// Nanoparticle describes a solid nanoparticle species for nanofluid
// engineering.
type Nanoparticle struct {
	Name string
	// Rho is the particle density in kg/m³.
	Rho float64
	// Cp is the particle specific heat in J/(kg·K).
	Cp float64
	// K is the particle thermal conductivity in W/(m·K).
	K float64
}

// Alumina returns Al₂O₃ nanoparticles, the classic nanofluid additive.
func Alumina() Nanoparticle {
	return Nanoparticle{Name: "Al2O3", Rho: 3970, Cp: 765, K: 40}
}

// CopperOxide returns CuO nanoparticles.
func CopperOxide() Nanoparticle {
	return Nanoparticle{Name: "CuO", Rho: 6500, Cp: 535, K: 20}
}

// Nanofluid builds an engineered nanofluid from a base liquid and a
// particle volume fraction phi (0 ≤ phi ≤ 0.1):
//
//   - conductivity via the Maxwell effective-medium model,
//   - viscosity via the Einstein dilute-suspension model (1 + 2.5 φ),
//   - density and volumetric heat capacity by volume-weighted mixing.
//
// The paper lists "novel engineered environmentally friendly nano-fluids"
// among the candidate inter-tier coolants; this constructor lets the
// single-phase machinery evaluate them like any other coolant.
func Nanofluid(base Fluid, p Nanoparticle, phi float64) (Fluid, error) {
	if phi < 0 || phi > 0.1 {
		return Fluid{}, fmt.Errorf("fluids: nanoparticle volume fraction %v outside [0, 0.1]", phi)
	}
	kb, kp := base.K, p.K
	kEff := kb * (kp + 2*kb + 2*phi*(kp-kb)) / (kp + 2*kb - phi*(kp-kb))
	rho := (1-phi)*base.Rho + phi*p.Rho
	// Volumetric heat capacity mixes by volume; convert back to per-mass.
	rhoCp := (1-phi)*base.Rho*base.Cp + phi*p.Rho*p.Cp
	return Fluid{
		Name: fmt.Sprintf("%s+%.1f%%%s", base.Name, phi*100, p.Name),
		Rho:  rho,
		Cp:   rhoCp / rho,
		K:    kEff,
		Mu:   base.Mu * (1 + 2.5*phi),
		Sat:  nil, // nanofluids are used single-phase only
	}, nil
}

// Air returns air at ~35 °C, used by the lumped air-cooled heat-sink model.
func Air() Fluid {
	return Fluid{
		Name: "air",
		Rho:  1.145,
		Cp:   1007,
		K:    0.027,
		Mu:   1.895e-5,
	}
}

// WaterAt returns liquid water properties at the given temperature
// (°C, valid 0–100). Viscosity follows the Vogel–Fulcher–Tammann
// correlation (halving between 20 and 55 °C — a first-order effect on
// micro-channel pressure drop, since laminar ΔP ∝ µ), conductivity a
// quadratic fit peaking near 130 °C, density a quadratic fit around the
// 4 °C maximum; heat capacity is flat to within 1 % over the range.
func WaterAt(tempC float64) (Fluid, error) {
	if tempC < 0 || tempC > 100 {
		return Fluid{}, fmt.Errorf("fluids: water temperature %v °C outside liquid range", tempC)
	}
	tK := tempC + 273.15
	// VFT: µ = A·10^(B/(T−C)), A = 2.414e-5 Pa·s, B = 247.8 K, C = 140 K.
	mu := 2.414e-5 * math.Pow(10, 247.8/(tK-140))
	// k(T) quadratic fit to IAPWS data (W/(m·K)).
	k := -0.8691 + 0.008949*tK - 1.584e-5*tK*tK
	// ρ(T) quadratic around the 4 °C maximum (kg/m³).
	rho := 999.97 * (1 - (tempC-3.983)*(tempC-3.983)/508929.2*(tempC+288.94)/(tempC+68.13))
	w := Water()
	w.Name = fmt.Sprintf("water@%.0fC", tempC)
	w.Mu = mu
	w.K = k
	w.Rho = rho
	return w, nil
}
