package fluids

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestWaterMatchesTableI(t *testing.T) {
	w := Water()
	if w.K != 0.6 {
		t.Errorf("water k = %v, want 0.6 W/(m·K) (Table I)", w.K)
	}
	if w.Cp != 4183 {
		t.Errorf("water cp = %v, want 4183 J/(kg·K) (Table I)", w.Cp)
	}
	if w.Sat != nil {
		t.Error("water must not expose a saturation curve in this model")
	}
}

func TestPrandtlNumbers(t *testing.T) {
	// Water Pr ~ 6 at room temperature; refrigerants Pr ~ 3-6; air ~0.7.
	if pr := Water().Prandtl(); pr < 4 || pr > 8 {
		t.Errorf("water Pr = %v, want ~6", pr)
	}
	if pr := Air().Prandtl(); pr < 0.6 || pr > 0.8 {
		t.Errorf("air Pr = %v, want ~0.7", pr)
	}
}

func TestRefrigerantLatentHeatScale(t *testing.T) {
	// The paper: "about 150 kJ/kg of R-134a compared to 4.2 kJ/kg K of
	// water". Check the order of magnitude near operating conditions.
	r := R134a()
	h := r.Sat.Hfg(units.CToK(40))
	if h < 120e3 || h > 200e3 {
		t.Errorf("R134a hfg(40C) = %v J/kg, want 120-200 kJ/kg", h)
	}
	ratio := h / Water().Cp
	if ratio < 20 {
		t.Errorf("hfg/cp_water = %v K, expected ≫ 1 (latent ≫ sensible)", ratio)
	}
}

func TestSaturationRoundTrip(t *testing.T) {
	for _, f := range []Fluid{R134a(), R236fa(), R245fa()} {
		lo, hi := f.Sat.TRange()
		for tK := lo; tK <= hi; tK += 2 {
			p := f.Sat.Psat(tK)
			back := f.Sat.Tsat(p)
			if math.Abs(back-tK) > 0.35 {
				t.Errorf("%s: Tsat(Psat(%.2fK)) = %.2fK (off by %.2fK)",
					f.Name, tK, back, back-tK)
			}
		}
	}
}

func TestSaturationMonotone(t *testing.T) {
	for _, f := range []Fluid{R134a(), R236fa(), R245fa()} {
		lo, hi := f.Sat.TRange()
		prev := -1.0
		for tK := lo; tK <= hi; tK += 0.5 {
			p := f.Sat.Psat(tK)
			if p <= prev {
				t.Fatalf("%s: Psat not strictly increasing at %v K", f.Name, tK)
			}
			prev = p
		}
	}
}

func TestR245faOperatingPoint(t *testing.T) {
	// Fig. 8: refrigerant enters at a saturation temperature of 30 °C.
	// R245fa Psat(30 °C) ≈ 1.78 bar — a comfortable low-pressure point.
	p := R245fa().Sat.Psat(units.CToK(30))
	if p < 1.5e5 || p > 2.1e5 {
		t.Errorf("R245fa Psat(30C) = %v Pa, want ~1.78e5", p)
	}
}

func TestDTsatDPPositive(t *testing.T) {
	// Saturation temperature must fall when pressure falls: dTsat/dP > 0.
	// This is the mechanism by which the refrigerant exits *colder* than
	// it enters (paper §III).
	for _, f := range []Fluid{R134a(), R236fa(), R245fa()} {
		p := f.Sat.Psat(units.CToK(30))
		slope := f.Sat.DTsatDP(p)
		if slope <= 0 {
			t.Errorf("%s: dTsat/dP = %v, want > 0", f.Name, slope)
		}
		// Scale check: low-pressure refrigerants sit near 1e-4 K/Pa,
		// i.e. ~1 K per 0.1 bar.
		if slope < 1e-6 || slope > 1e-3 {
			t.Errorf("%s: dTsat/dP = %v K/Pa outside plausible range", f.Name, slope)
		}
	}
}

func TestSaturationTempDropAcrossChannelPressureDrop(t *testing.T) {
	// Agostini: pressure drops < 0.9 bar at up to 255 W/cm². A 0.1 bar
	// drop at Tsat=30 °C should lower Tsat by a fraction of a kelvin to a
	// few kelvin (Fig. 8 shows 30 -> 29.5 °C for the tested conditions).
	f := R245fa()
	pIn := f.Sat.Psat(units.CToK(30))
	tOut := f.Sat.Tsat(pIn - units.BarToPa(0.05))
	drop := units.CToK(30) - tOut
	if drop <= 0 || drop > 5 {
		t.Errorf("Tsat drop over 0.05 bar = %v K, want (0, 5]", drop)
	}
}

func TestVaporDensityBelowLiquid(t *testing.T) {
	for _, f := range []Fluid{R134a(), R236fa(), R245fa()} {
		lo, hi := f.Sat.TRange()
		for tK := lo; tK <= hi; tK += 5 {
			if rv := f.Sat.RhoVapor(tK); rv >= f.Rho || rv <= 0 {
				t.Errorf("%s: vapour density %v at %v K not in (0, rho_l)", f.Name, rv, tK)
			}
		}
	}
}

func TestNanofluidMixtureRules(t *testing.T) {
	base := Water()
	nf, err := Nanofluid(base, Alumina(), 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if nf.K <= base.K {
		t.Errorf("nanofluid k = %v, must exceed base %v", nf.K, base.K)
	}
	if nf.K > base.K*1.3 {
		t.Errorf("nanofluid k = %v, Maxwell at 4%% should be < +30%%", nf.K)
	}
	if nf.Mu <= base.Mu {
		t.Errorf("nanofluid mu = %v, must exceed base %v", nf.Mu, base.Mu)
	}
	if got, want := nf.Mu, base.Mu*1.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("Einstein viscosity = %v, want %v", got, want)
	}
	if nf.Rho <= base.Rho {
		t.Error("alumina loading must raise density")
	}
}

func TestNanofluidZeroLoadingIsBase(t *testing.T) {
	base := Water()
	nf, err := Nanofluid(base, Alumina(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nf.K-base.K) > 1e-12 || math.Abs(nf.Mu-base.Mu) > 1e-12 ||
		math.Abs(nf.Rho-base.Rho) > 1e-9 || math.Abs(nf.Cp-base.Cp) > 1e-9 {
		t.Errorf("phi=0 nanofluid differs from base: %+v vs %+v", nf, base)
	}
}

func TestNanofluidRejectsBadLoading(t *testing.T) {
	if _, err := Nanofluid(Water(), Alumina(), 0.5); err == nil {
		t.Error("expected error for phi=0.5")
	}
	if _, err := Nanofluid(Water(), Alumina(), -0.01); err == nil {
		t.Error("expected error for negative phi")
	}
}

func TestNanofluidMonotoneInLoading(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		phi1 := math.Mod(math.Abs(raw), 0.05)
		phi2 := phi1 + 0.03
		nf1, err1 := Nanofluid(Water(), Alumina(), phi1)
		nf2, err2 := Nanofluid(Water(), Alumina(), phi2)
		if err1 != nil || err2 != nil {
			return false
		}
		return nf2.K > nf1.K && nf2.Mu > nf1.Mu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDielectricDisadvantage(t *testing.T) {
	// Paper §II-C: dielectric fluids have lower volumetric heat capacity
	// and higher viscosity relative to water, degrading inter-tier
	// performance. Verify the property library encodes that.
	w, d := Water(), Dielectric()
	if d.VolumetricHeatCapacity() >= w.VolumetricHeatCapacity() {
		t.Errorf("dielectric rho·cp %v should be below water %v",
			d.VolumetricHeatCapacity(), w.VolumetricHeatCapacity())
	}
	if d.K >= w.K {
		t.Errorf("dielectric k %v should be below water %v", d.K, w.K)
	}
}

func TestKinematicViscosity(t *testing.T) {
	w := Water()
	want := w.Mu / w.Rho
	if got := w.KinematicViscosity(); got != want {
		t.Errorf("nu = %v, want %v", got, want)
	}
}
