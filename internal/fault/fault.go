// Package fault is a zero-cost-when-disabled registry of named fault
// points for deterministic failure injection. Production code threads
// points through its risky operations:
//
//	if err := fault.Do("store.wal.fsync"); err != nil { ... }
//	n, err := fault.WriteLen("store.page.writeback", len(buf))
//
// With no registry enabled (the production default) a point is a single
// atomic pointer load — no allocation, no lock, no branch beyond the nil
// check; a benchmark and an AllocsPerRun test pin this. Tests (and the
// thermal-server -fault-spec dev flag) enable a parsed Spec whose rules
// fire errors, added latency, or torn/short writes deterministically
// from a seed, so a chaos run is reproducible by seed alone.
//
// The registry is process-global by design: fault points sit on hot
// paths across packages (store WAL, buffer pool, HTTP peer transport,
// scenario compute) and must cost nothing when idle. Tests that enable
// faults must not run in parallel with tests that assume none.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is what a rule injects when it fires.
type Mode string

// Rule modes.
const (
	// ModeError returns an injected error from the point.
	ModeError Mode = "error"
	// ModeLatency sleeps Delay at the point, then proceeds normally.
	ModeLatency Mode = "latency"
	// ModeTorn short-writes at a write point: WriteLen reports only
	// Frac of the buffer as writable and returns an error, simulating a
	// crash mid-write. At non-write points it behaves like ModeError.
	ModeTorn Mode = "torn"
)

// Rule configures one fault point (or a prefix family of points).
type Rule struct {
	// Point is the exact point name, or a prefix glob ending in '*'
	// ("store.*" matches every store-side point).
	Point string
	// Mode selects what firing injects.
	Mode Mode
	// Prob is the per-evaluation firing probability (0 or 1 mean
	// always; the seeded per-rule PRNG decides otherwise).
	Prob float64
	// After suppresses the first N evaluations of the rule.
	After int
	// Times caps the firings (0 = unlimited).
	Times int
	// Delay is slept before the injected outcome (any mode).
	Delay time.Duration
	// Frac is the torn-write fraction actually written (default 0.5).
	Frac float64
	// Msg overrides the injected error message.
	Msg string
}

// Error is the injected failure type, so callers (and tests) can tell
// an injected fault from a real one with errors.As.
type Error struct {
	Point string
	Rule  string
	Msg   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected at %s (%s): %s", e.Point, e.Rule, e.Msg)
}

// ruleState is a compiled rule plus its deterministic firing state.
type ruleState struct {
	Rule
	prefix bool // Point ends in '*'

	mu    sync.Mutex
	rng   *rand.Rand
	seen  int
	fired int
}

// Registry is a compiled fault specification. Enable installs it
// process-wide; a nil Registry disables injection entirely.
type Registry struct {
	seed  int64
	rules []*ruleState

	hits sync.Map // point name → *atomic.Uint64, for test assertions
}

// active is the process-wide registry; nil (the default) is the
// disabled fast path: every point is one atomic load.
var active atomic.Pointer[Registry]

// New compiles rules into a Registry whose firing decisions derive only
// from seed and evaluation order — same seed, same workload, same
// faults.
func New(seed int64, rules ...Rule) *Registry {
	r := &Registry{seed: seed}
	for i, rule := range rules {
		if rule.Frac <= 0 || rule.Frac >= 1 {
			rule.Frac = 0.5
		}
		if rule.Msg == "" {
			rule.Msg = "injected " + string(rule.Mode)
		}
		if rule.Mode == "" {
			rule.Mode = ModeError
		}
		rs := &ruleState{
			Rule:   rule,
			prefix: strings.HasSuffix(rule.Point, "*"),
			// Each rule gets an independent deterministic stream so
			// reordering unrelated rules does not perturb this one.
			rng: rand.New(rand.NewSource(seed ^ int64(i+1)*int64(0x9e3779b97f4a7c15&0x7fffffffffffffff))),
		}
		if rs.prefix {
			rs.Point = strings.TrimSuffix(rs.Point, "*")
		}
		r.rules = append(r.rules, rs)
	}
	return r
}

// Enable installs r process-wide (nil disables). Call Disable (or
// Enable(nil)) when done; tests should t.Cleanup(fault.Disable).
func Enable(r *Registry) { active.Store(r) }

// Disable removes any installed registry, restoring the no-op fast
// path.
func Disable() { active.Store(nil) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Hits returns how many times the named point fired (any rule) under
// this registry — the chaos suite's coverage assertion.
func (r *Registry) Hits(point string) uint64 {
	if v, ok := r.hits.Load(point); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// TotalHits sums firings across all points.
func (r *Registry) TotalHits() uint64 {
	var n uint64
	r.hits.Range(func(_, v any) bool {
		n += v.(*atomic.Uint64).Load()
		return true
	})
	return n
}

func (r *Registry) recordHit(point string) {
	v, ok := r.hits.Load(point)
	if !ok {
		v, _ = r.hits.LoadOrStore(point, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

// eval returns the first matching rule that fires for point, or nil.
func (r *Registry) eval(point string) *ruleState {
	for _, rs := range r.rules {
		if rs.prefix {
			if !strings.HasPrefix(point, rs.Point) {
				continue
			}
		} else if rs.Point != point {
			continue
		}
		rs.mu.Lock()
		rs.seen++
		if rs.seen <= rs.After ||
			(rs.Times > 0 && rs.fired >= rs.Times) ||
			(rs.Prob > 0 && rs.Prob < 1 && rs.rng.Float64() >= rs.Prob) {
			rs.mu.Unlock()
			continue
		}
		rs.fired++
		rs.mu.Unlock()
		r.recordHit(point)
		return rs
	}
	return nil
}

func (rs *ruleState) err(point string) error {
	return &Error{Point: point, Rule: rs.ruleName(), Msg: rs.Msg}
}

func (rs *ruleState) ruleName() string {
	name := rs.Point
	if rs.prefix {
		name += "*"
	}
	return name + "=" + string(rs.Mode)
}

// Do evaluates the named point: it sleeps any injected latency and
// returns the injected error (nil when disabled, unmatched, or the rule
// is latency-only). This is the one-liner most fault points use.
func Do(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	rs := r.eval(name)
	if rs == nil {
		return nil
	}
	if rs.Delay > 0 {
		time.Sleep(rs.Delay)
	}
	if rs.Mode == ModeLatency {
		return nil
	}
	return rs.err(name)
}

// WriteLen evaluates a write point for a buffer of n bytes. It returns
// how many bytes the caller should actually write and the injected
// error: (n, nil) when nothing fires, (m < n, err) for a torn write —
// the caller writes the prefix then fails, simulating a crash mid-write
// — and (0, err) for a plain error.
func WriteLen(name string, n int) (int, error) {
	r := active.Load()
	if r == nil {
		return n, nil
	}
	rs := r.eval(name)
	if rs == nil {
		return n, nil
	}
	if rs.Delay > 0 {
		time.Sleep(rs.Delay)
	}
	switch rs.Mode {
	case ModeLatency:
		return n, nil
	case ModeTorn:
		m := int(rs.Frac * float64(n))
		if m >= n {
			m = n - 1
		}
		if m < 0 {
			m = 0
		}
		return m, rs.err(name)
	default:
		return 0, rs.err(name)
	}
}

// Parse compiles a fault spec string — the -fault-spec flag grammar:
//
//	spec  := clause (';' clause)*
//	clause:= "seed=" int
//	       | point '=' mode (',' option)*
//	mode  := "error" | "latency" | "torn"
//	option:= "p=" float | "after=" int | "times=" int
//	       | "delay=" duration | "frac=" float | "msg=" text
//
// e.g. "seed=7;store.wal.fsync=error,times=1;store.peer.*=latency,delay=50ms,p=0.3".
// Whitespace around clauses is ignored; empty clauses are skipped. An
// empty spec yields a registry with no rules (injection enabled but
// inert), so flag plumbing needs no special case.
func Parse(spec string) (*Registry, error) {
	var seed int64 = 1
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		eq := strings.Index(clause, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("fault: clause %q: want point=mode", clause)
		}
		point := strings.TrimSpace(clause[:eq])
		rest := clause[eq+1:]
		if point == "seed" {
			n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", rest, err)
			}
			seed = n
			continue
		}
		parts := strings.Split(rest, ",")
		rule := Rule{Point: point, Mode: Mode(strings.TrimSpace(parts[0]))}
		switch rule.Mode {
		case ModeError, ModeLatency, ModeTorn:
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown mode %q", clause, rule.Mode)
		}
		for _, opt := range parts[1:] {
			opt = strings.TrimSpace(opt)
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("fault: clause %q: bad option %q", clause, opt)
			}
			var err error
			switch k {
			case "p":
				rule.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (rule.Prob < 0 || rule.Prob > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", rule.Prob)
				}
			case "after":
				rule.After, err = strconv.Atoi(v)
				if err == nil && rule.After < 0 {
					err = fmt.Errorf("negative after")
				}
			case "times":
				rule.Times, err = strconv.Atoi(v)
				if err == nil && rule.Times < 0 {
					err = fmt.Errorf("negative times")
				}
			case "delay":
				rule.Delay, err = time.ParseDuration(v)
				if err == nil && rule.Delay < 0 {
					err = fmt.Errorf("negative delay")
				}
			case "frac":
				rule.Frac, err = strconv.ParseFloat(v, 64)
				if err == nil && (rule.Frac <= 0 || rule.Frac >= 1) {
					err = fmt.Errorf("torn fraction %v outside (0,1)", rule.Frac)
				}
			case "msg":
				rule.Msg = v
			default:
				err = fmt.Errorf("unknown option")
			}
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: option %q: %v", clause, opt, err)
			}
		}
		rules = append(rules, rule)
	}
	return New(seed, rules...), nil
}

// Points lists the point names production code registers — the chaos
// suite iterates it so a newly threaded point is automatically covered.
// Registration happens in each package's init; the list is sorted for
// deterministic iteration.
func Points() []string {
	pointsMu.Lock()
	defer pointsMu.Unlock()
	out := make([]string, len(points))
	copy(out, points)
	sort.Strings(out)
	return out
}

var (
	pointsMu sync.Mutex
	points   []string
)

// Register declares a fault point name (idempotent; called from package
// init of the code that evaluates the point).
func Register(names ...string) {
	pointsMu.Lock()
	defer pointsMu.Unlock()
	for _, n := range names {
		dup := false
		for _, p := range points {
			if p == n {
				dup = true
				break
			}
		}
		if !dup {
			points = append(points, n)
		}
	}
}
