package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledFastPathNoAlloc(t *testing.T) {
	Disable()
	if n := testing.AllocsPerRun(1000, func() {
		if err := Do("store.wal.fsync"); err != nil {
			t.Errorf("disabled Do returned %v", err)
		}
		if m, err := WriteLen("store.page.writeback", 4096); m != 4096 || err != nil {
			t.Errorf("disabled WriteLen = (%d, %v)", m, err)
		}
	}); n != 0 {
		t.Fatalf("disabled fault points allocate: %v allocs/run", n)
	}
}

func TestErrorInjection(t *testing.T) {
	t.Cleanup(Disable)
	Enable(New(1, Rule{Point: "a.b", Mode: ModeError, Msg: "boom"}))
	err := Do("a.b")
	if err == nil {
		t.Fatal("expected injected error")
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not *fault.Error", err)
	}
	if fe.Point != "a.b" || fe.Msg != "boom" {
		t.Fatalf("unexpected fault error: %+v", fe)
	}
	if err := Do("a.other"); err != nil {
		t.Fatalf("unmatched point fired: %v", err)
	}
}

func TestPrefixMatch(t *testing.T) {
	t.Cleanup(Disable)
	reg := New(1, Rule{Point: "store.*", Mode: ModeError})
	Enable(reg)
	if err := Do("store.wal.fsync"); err == nil {
		t.Fatal("prefix rule did not match store.wal.fsync")
	}
	if err := Do("jobs.compute"); err != nil {
		t.Fatalf("prefix rule matched unrelated point: %v", err)
	}
	if got := reg.Hits("store.wal.fsync"); got != 1 {
		t.Fatalf("Hits(store.wal.fsync) = %d, want 1", got)
	}
}

func TestAfterAndTimes(t *testing.T) {
	t.Cleanup(Disable)
	Enable(New(1, Rule{Point: "p", Mode: ModeError, After: 2, Times: 3}))
	var fired int
	for i := 0; i < 10; i++ {
		if Do("p") != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired during After window at evaluation %d", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (Times cap)", fired)
	}
}

// TestProbDeterminism pins the contract the chaos suite depends on: the
// same seed and evaluation order reproduce the same firing pattern.
func TestProbDeterminism(t *testing.T) {
	t.Cleanup(Disable)
	pattern := func(seed int64) string {
		Enable(New(seed, Rule{Point: "p", Mode: ModeError, Prob: 0.5}))
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Do("p") != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different firing pattern:\n%s\n%s", a, b)
	}
	if c := pattern(43); c == a {
		t.Fatalf("different seeds produced identical pattern %s", a)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 pattern is degenerate: %s", a)
	}
}

func TestWriteLenTorn(t *testing.T) {
	t.Cleanup(Disable)
	Enable(New(1, Rule{Point: "w", Mode: ModeTorn, Frac: 0.25}))
	n, err := WriteLen("w", 100)
	if err == nil {
		t.Fatal("torn write returned nil error")
	}
	if n != 25 {
		t.Fatalf("torn WriteLen = %d, want 25", n)
	}
	// A torn write must always be genuinely short, even at tiny sizes.
	for size := 1; size < 8; size++ {
		n, err := WriteLen("w", size)
		if err == nil || n >= size || n < 0 {
			t.Fatalf("WriteLen(%d) = (%d, %v): want 0 <= n < size and error", size, n, err)
		}
	}
}

func TestLatencyMode(t *testing.T) {
	t.Cleanup(Disable)
	Enable(New(1, Rule{Point: "slow", Mode: ModeLatency, Delay: 20 * time.Millisecond}))
	start := time.Now()
	if err := Do("slow"); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency mode slept only %v", d)
	}
}

func TestParse(t *testing.T) {
	good := []string{
		"",
		"seed=7",
		"store.wal.fsync=error",
		"store.wal.fsync=error,times=1",
		"seed=9; store.peer.*=latency, delay=50ms, p=0.3",
		"w=torn,frac=0.25,msg=crash mid-write",
		"a=error,after=3,times=2,delay=1ms,p=1",
	}
	for _, spec := range good {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q) = %v, want ok", spec, err)
		}
	}
	bad := []string{
		"nonsense",
		"=error",
		"seed=abc",
		"p=error,q",
		"a=explode",
		"a=error,p=1.5",
		"a=error,p=-0.1",
		"a=error,after=-1",
		"a=error,times=-2",
		"a=error,delay=-5ms",
		"a=torn,frac=1.5",
		"a=torn,frac=0",
		"a=error,wat=1",
		"a=error,delay=xyz",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseRoundTripBehaves(t *testing.T) {
	t.Cleanup(Disable)
	reg, err := Parse("seed=5;x=error,times=2;y.*=torn,frac=0.5")
	if err != nil {
		t.Fatal(err)
	}
	Enable(reg)
	if Do("x") == nil || Do("x") == nil {
		t.Fatal("x should fire twice")
	}
	if Do("x") != nil {
		t.Fatal("x fired past times=2")
	}
	if n, err := WriteLen("y.z", 10); err == nil || n != 5 {
		t.Fatalf("y.z torn write = (%d, %v)", n, err)
	}
}

func TestRegisterPoints(t *testing.T) {
	Register("test.unique.point", "test.unique.point") // idempotent
	var found int
	for _, p := range Points() {
		if p == "test.unique.point" {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("registered point listed %d times, want 1", found)
	}
}

// BenchmarkDisabledPoint is the bench-gate guard for the zero-cost
// claim: one atomic load, low single-digit nanoseconds, zero allocs.
func BenchmarkDisabledPoint(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Do("store.wal.fsync"); err != nil {
			b.Fatal(err)
		}
	}
}
