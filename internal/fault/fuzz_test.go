package fault

import "testing"

// FuzzFaultSpec asserts Parse never panics and that a spec it accepts
// compiles to a registry whose points can all be evaluated safely.
func FuzzFaultSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=7")
	f.Add("store.wal.fsync=error,times=1")
	f.Add("store.peer.*=latency,delay=50ms,p=0.3")
	f.Add("w=torn,frac=0.25,msg=crash mid-write")
	f.Add("a=error;b=latency;c=torn")
	f.Add(";;;seed=-1;x=error,p=0.0001,after=0,times=0")
	f.Fuzz(func(t *testing.T, spec string) {
		reg, err := Parse(spec)
		if err != nil {
			return
		}
		if reg == nil {
			t.Fatalf("Parse(%q) = nil registry, nil error", spec)
		}
		// Accepted specs must produce a registry that is safe to run:
		// evaluate every rule's point a few times without panicking.
		for _, rs := range reg.rules {
			point := rs.Point
			if rs.prefix {
				point += "x"
			}
			for i := 0; i < 3; i++ {
				if rs.Delay > 0 {
					break // don't sleep in fuzz iterations
				}
				_ = reg.eval(point)
			}
		}
	})
}
