package server

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// admission is the compute-endpoint overload guard: a fixed number of
// execution slots plus an equally sized bounded wait queue. A request
// that can neither run nor queue — or that queues longer than the wait
// bound — is shed with 503 + Retry-After, so saturating traffic gets a
// prompt, retryable answer instead of an unbounded queue and
// deadline-less hangs.
type admission struct {
	slots    chan struct{} // execution slots (cap = MaxInFlight)
	queue    chan struct{} // wait-queue tickets (cap = MaxInFlight)
	maxWait  time.Duration
	shed     atomic.Uint64
	admitted atomic.Uint64
}

func newAdmission(maxInFlight int, maxWait time.Duration) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if maxWait <= 0 {
		maxWait = time.Second
	}
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		queue:   make(chan struct{}, maxInFlight),
		maxWait: maxWait,
	}
}

// AdmissionStats is the /v1/stats surface of the overload guard.
type AdmissionStats struct {
	// MaxInFlight is the configured execution-slot count.
	MaxInFlight int `json:"max_inflight"`
	// InFlight is the current number of executing compute requests.
	InFlight int `json:"in_flight"`
	// Queued is the current number of requests waiting for a slot.
	Queued int `json:"queued"`
	// Admitted counts compute requests that got a slot; Shed counts
	// requests rejected with 503 (full queue or queue-wait timeout).
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxInFlight: cap(a.slots),
		InFlight:    len(a.slots),
		Queued:      len(a.queue),
		Admitted:    a.admitted.Load(),
		Shed:        a.shed.Load(),
	}
}

// acquire obtains an execution slot, waiting in the bounded queue up to
// maxWait. It returns a release func on success, nil when the request
// was shed (queue full or wait bound exceeded) or the client went away.
func (a *admission) acquire(r *http.Request) (release func(), ok bool) {
	select {
	case a.slots <- struct{}{}: // fast path: free slot, no queueing
		a.admitted.Add(1)
		return func() { <-a.slots }, true
	default:
	}
	select {
	case a.queue <- struct{}{}: // queue ticket acquired
	default:
		a.shed.Add(1)
		return nil, false
	}
	defer func() { <-a.queue }()
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return func() { <-a.slots }, true
	case <-t.C:
		a.shed.Add(1)
		return nil, false
	case <-r.Context().Done():
		return nil, false
	}
}

// shedResponse writes the canonical overload answer.
func shedResponse(w http.ResponseWriter, maxWait time.Duration) {
	retry := int(maxWait / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(retry))
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("server overloaded: compute slots and wait queue full, retry after %ds", retry))
}

// compute wraps a compute-endpoint handler with admission control and
// the per-request deadline. The deadline is installed on the request
// context, so it propagates through dispatch, the worker pool, the
// sweep engine and the single-flight cache; a request canceled while
// queued or mid-compute unwinds without poisoning shared state (the
// cache retries joiners whose originator was canceled). Async
// submissions bypass the deadline — the manager owns their lifetime —
// but still pay admission: a 202 costs a queue slot check like any
// other request, keeping the shed signal honest under async floods.
func (s *Server) compute(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.admit != nil {
			release, ok := s.admit.acquire(r)
			if !ok {
				if r.Context().Err() != nil {
					// Client gave up while queued; nothing useful to write.
					return
				}
				shedResponse(w, s.admit.maxWait)
				return
			}
			defer release()
		}
		if s.reqTimeout > 0 && !wantFlag(r, "async") {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// handleReadyz is the load-balancer readiness signal, distinct from
// /healthz liveness: a live process answers /healthz while draining or
// degraded, but /readyz flips to 503 as soon as the server is draining
// (SIGTERM received, Shutdown imminent) or the durable store can no
// longer acknowledge writes (a shard wedged after a durability
// failure), so balancers stop routing new work here while in-flight
// requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reasons := []string{}
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if s.store != nil && !s.store.Healthy() {
		reasons = append(reasons, "store degraded (wedged shard)")
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":   false,
			"reasons": reasons,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// SetDraining flips the drain state reported by /readyz. The shutdown
// sequence is: receive SIGTERM → SetDraining(true) → wait for load
// balancers to observe unreadiness → http.Server.Shutdown (finishes
// in-flight requests) → close the store.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }
