package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/sweep"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// quickBody is a fast-but-real simulate request.
func quickBody(t *testing.T) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(jobs.Scenario{
		Tiers: 2, Cooling: "air", Policy: "LB", Workload: "web",
		Steps: 2, Grid: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func decode[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != wantStatus {
		var e errorJSON
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status = %d (%s), want %d", resp.StatusCode, e.Error, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[map[string]any](t, resp, http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("healthz body = %v", body)
	}
}

// TestSimulateEndToEndWithCacheHit is the acceptance check: a simulate
// request served end to end, with the second identical request hitting
// the cache and returning the same metrics.
func TestSimulateEndToEndWithCacheHit(t *testing.T) {
	_, ts := newTestServer(t)

	post := func() SimulateResponse {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", quickBody(t))
		if err != nil {
			t.Fatal(err)
		}
		return decode[SimulateResponse](t, resp, http.StatusOK)
	}
	first := post()
	if first.Cached {
		t.Fatal("first request reported a cache hit")
	}
	if first.Metrics == nil || first.Metrics.SimulatedS <= 0 {
		t.Fatalf("first metrics = %+v", first.Metrics)
	}
	second := post()
	if !second.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if !reflect.DeepEqual(second.Metrics, first.Metrics) {
		t.Fatal("cached metrics differ from computed metrics")
	}
}

// TestStatsSolverMetrics exercises the /v1/stats surface: fresh solves
// grow the per-backend aggregates, cache hits do not, and the request
// "solver" field routes work to the named backend.
func TestStatsSolverMetrics(t *testing.T) {
	_, ts := newTestServer(t)

	getStats := func() StatsResponse {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		return decode[StatsResponse](t, resp, http.StatusOK)
	}
	if st := getStats(); st.ScenariosComputed != 0 || len(st.Backends) < 3 {
		t.Fatalf("fresh server stats = %+v", st)
	}

	post := func(body []byte) SimulateResponse {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return decode[SimulateResponse](t, resp, http.StatusOK)
	}
	mk := func(solver string) []byte {
		b, err := json.Marshal(jobs.Scenario{
			Tiers: 2, Cooling: "air", Policy: "LB", Workload: "web",
			Steps: 2, Grid: 8, Seed: 1, Solver: solver,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	first := post(mk(""))
	if first.Request.Solver != "bicgstab" {
		t.Fatalf("normalized request solver = %q", first.Request.Solver)
	}
	st := getStats()
	if st.ScenariosComputed != 1 {
		t.Fatalf("after one solve: ScenariosComputed = %d", st.ScenariosComputed)
	}
	if agg, ok := st.Solver["bicgstab"]; !ok || agg.Solves == 0 {
		t.Fatalf("bicgstab aggregate missing or empty: %+v", st.Solver)
	}

	// A cache hit must not grow the aggregates.
	if resp := post(mk("")); !resp.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if st := getStats(); st.ScenariosComputed != 1 {
		t.Fatalf("cache hit grew ScenariosComputed to %d", st.ScenariosComputed)
	}

	// A direct-backend request is a distinct cache entry and records
	// under its own backend, with factor-once visible in the counters.
	dresp := post(mk("direct"))
	if dresp.Cached || dresp.Key == first.Key {
		t.Fatal("direct-backend request aliased the bicgstab cache entry")
	}
	st = getStats()
	agg, ok := st.Solver["direct"]
	if !ok || agg.Factorizations == 0 || agg.Solves == 0 {
		t.Fatalf("direct aggregate missing or empty: %+v", st.Solver)
	}
	if agg.Iterations != 0 {
		t.Fatalf("direct backend reported %d iterations", agg.Iterations)
	}
}

func TestSimulateAsyncSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/simulate?async=1", "application/json", quickBody(t))
	if err != nil {
		t.Fatal(err)
	}
	queued := decode[jobs.JobView](t, resp, http.StatusAccepted)
	if queued.ID == "" || queued.Status.Terminal() {
		t.Fatalf("queued view = %+v", queued)
	}

	// Long-poll until terminal.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + queued.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	done := decode[jobs.JobView](t, resp, http.StatusOK)
	if done.Status != jobs.StatusDone {
		t.Fatalf("terminal job = %+v", done)
	}
	result, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(result, &sr); err != nil {
		t.Fatalf("job result is not a SimulateResponse: %v", err)
	}
	if sr.Metrics == nil || sr.Metrics.SimulatedS <= 0 {
		t.Fatalf("async metrics = %+v", sr.Metrics)
	}

	// Plain poll works too and the job shows up in the listing.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v := decode[jobs.JobView](t, resp, http.StatusOK); v.Status != jobs.StatusDone {
		t.Fatalf("polled job = %+v", v)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]jobs.JobView](t, resp, http.StatusOK)
	if len(list["jobs"]) != 1 || list["jobs"][0].ID != queued.ID {
		t.Fatalf("job list = %+v", list)
	}
}

func TestSimulateRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for name, body := range map[string]string{
		"malformed json": "{not json",
		"unknown field":  `{"tiresome": 1}`,
		"bad tiers":      `{"tiers": 3}`,
		"bad cooling":    `{"cooling": "helium"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestDSEEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/dse", "application/json", bytes.NewReader([]byte(`{"flow_levels": 4}`)))
	if err != nil {
		t.Fatal(err)
	}
	body := decode[DSEResponse](t, resp, http.StatusOK)
	if len(body.Evaluations) == 0 || len(body.ParetoFront) == 0 {
		t.Fatalf("dse response empty: %+v", body)
	}
	if body.Best == nil {
		t.Fatalf("no feasible best design: %s", body.BestError)
	}
	for _, e := range body.ParetoFront {
		if e.JunctionC <= 0 || e.FlowMlMin <= 0 {
			t.Fatalf("implausible evaluation %+v", e)
		}
	}
}

func TestStudiesEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full study matrix is not short")
	}
	s, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json",
		bytes.NewReader([]byte(`{"steps": 4, "grid": 8}`)))
	if err != nil {
		t.Fatal(err)
	}
	body := decode[StudyResponse](t, resp, http.StatusOK)
	if len(body.Results) != 7 {
		t.Fatalf("got %d study rows, want 7", len(body.Results))
	}
	if body.Fig6 == "" || body.Fig7 == "" {
		t.Fatal("rendered tables missing")
	}
	// The study populated the shared scenario cache: 7 configs × 4
	// workloads.
	if n := s.Cache().Len(); n != 28 {
		t.Fatalf("cache holds %d scenarios after the study, want 28", n)
	}
}

func TestStudiesAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("full study matrix is not short")
	}
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/studies?async=1", "application/json",
		bytes.NewReader([]byte(`{"steps": 2, "grid": 8}`)))
	if err != nil {
		t.Fatal(err)
	}
	queued := decode[jobs.JobView](t, resp, http.StatusAccepted)

	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "?wait=1")
		if err != nil {
			t.Fatal(err)
		}
		v := decode[jobs.JobView](t, resp, http.StatusOK)
		if v.Status.Terminal() {
			if v.Status != jobs.StatusDone {
				t.Fatalf("study job failed: %s", v.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("study job did not finish in time")
		}
	}
}

func TestSweepsGridEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep endpoint test is not short")
	}
	_, ts := newTestServer(t)
	body := `{"grid": {"coolings": ["air", "liquid"], "workloads": ["web", "light"], "steps": 3, "grid": 8}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[sweep.Report](t, resp, http.StatusOK)
	if rep.Scenarios != 4 || rep.Errors != 0 || len(rep.Results) != 4 {
		t.Fatalf("report: %d scenarios, %d errors, %d results", rep.Scenarios, rep.Errors, len(rep.Results))
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("got %d structural groups, want 2", len(rep.Groups))
	}
	if rep.Prep.Shares == 0 {
		t.Fatal("sweep shared no factorizations")
	}
	// The sharing outcome is folded into /v1/stats.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[StatsResponse](t, resp, http.StatusOK)
	if stats.Sweeps.Sweeps != 1 || stats.Sweeps.Scenarios != 4 || stats.Sweeps.Prep.Shares == 0 {
		t.Fatalf("stats.sweeps = %+v", stats.Sweeps)
	}
}

func TestSweepsSteadyStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep endpoint test is not short")
	}
	_, ts := newTestServer(t)
	body := `{"steady": {"tiers": 2, "grid": 8, "utils": [0.2, 0.8], "flows_ml_min": [10, 32.3]}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps?stream=1", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var points, reports int
	var final sweepLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l sweepLine
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		switch l.Type {
		case "point":
			points++
			if l.Point == nil || l.Point.Error != "" {
				t.Fatalf("bad point line: %+v", l)
			}
		case "report":
			reports++
			final = l
		default:
			t.Fatalf("unexpected line type %q", l.Type)
		}
	}
	if points != 4 || reports != 1 {
		t.Fatalf("streamed %d points and %d reports, want 4 and 1", points, reports)
	}
	if final.SteadyReport == nil || final.SteadyReport.Prep.Factorizations != 2 {
		t.Fatalf("final report: %+v", final.SteadyReport)
	}
	if len(final.SteadyReport.Points) != 0 {
		t.Fatal("summary line repeats the streamed points")
	}
}

func TestSweepsRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{}`,
		`{"grid": {}, "steady": {"utils": [0.5], "flows_ml_min": [20]}}`,
		`{"grid": {"tiers": [3]}}`,
		`{"steady": {"utils": [], "flows_ml_min": [20]}}`,
		`{"nope": 1}`,
	} {
		// Streamed and unstreamed alike must reject before any 200.
		for _, path := range []string{"/v1/sweeps", "/v1/sweeps?stream=1"} {
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode == http.StatusOK {
				t.Fatalf("bad sweep request accepted on %s: %s", path, body)
			}
			resp.Body.Close()
		}
	}
}

func TestSweepsGridBatchStats(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep endpoint test is not short")
	}
	_, ts := newTestServer(t)
	body := `{"grid": {"coolings": ["liquid"], "policies": ["LC_FUZZY"], "seeds": [1, 2, 3], "solvers": ["direct"], "steps": 3, "grid": 8}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[sweep.Report](t, resp, http.StatusOK)
	if rep.Errors != 0 || rep.Batch == nil {
		t.Fatalf("report: %d errors, batch %+v", rep.Errors, rep.Batch)
	}
	if rep.Batch.BatchedColumns == 0 || rep.Batch.Assemblies.Shares == 0 {
		t.Fatalf("grid sweep did not lockstep: %+v", rep.Batch)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[StatsResponse](t, resp, http.StatusOK)
	if stats.Sweeps.Batch.BatchedColumns != rep.Batch.BatchedColumns {
		t.Fatalf("stats batch aggregate %+v != report %+v", stats.Sweeps.Batch, rep.Batch.BatchStats)
	}
	if stats.Sweeps.Assemblies.Shares == 0 {
		t.Fatalf("stats assemblies aggregate %+v", stats.Sweeps.Assemblies)
	}
}

// flushRecorder is a ResponseWriter whose Flush hands everything written
// since the previous flush to an unbuffered channel and blocks until the
// consumer takes it — a deterministic slow reader: the handler cannot
// run ahead of the client by more than one record.
type flushRecorder struct {
	header  http.Header
	pending bytes.Buffer
	chunks  chan string
}

func (f *flushRecorder) Header() http.Header         { return f.header }
func (f *flushRecorder) WriteHeader(int)             {}
func (f *flushRecorder) Write(p []byte) (int, error) { return f.pending.Write(p) }
func (f *flushRecorder) Flush() {
	if f.pending.Len() == 0 {
		return
	}
	f.chunks <- f.pending.String()
	f.pending.Reset()
}

// TestSweepsStreamFlushesEveryRecord pins the incremental-streaming
// contract of /v1/sweeps?stream=1: every NDJSON record is flushed on its
// own, so a slow reader receives result lines one at a time while the
// sweep is still running, instead of one buffered blob at the end.
func TestSweepsStreamFlushesEveryRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep endpoint test is not short")
	}
	s := New(Options{Workers: 1})
	defer s.Close()
	body := `{"grid": {"workloads": ["web", "light", "db", "mm"], "steps": 2, "grid": 8}}`
	req := httptest.NewRequest("POST", "/v1/sweeps?stream=1", bytes.NewReader([]byte(body)))
	rec := &flushRecorder{header: http.Header{}, chunks: make(chan string)}
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	var lines []string
	for open := true; open; {
		select {
		case chunk := <-rec.chunks:
			trimmed := strings.TrimSuffix(chunk, "\n")
			if strings.Contains(trimmed, "\n") {
				t.Fatalf("one flush carried multiple records: %q", chunk)
			}
			lines = append(lines, trimmed)
		case <-done:
			open = false
		}
	}
	if want := 4 + 1; len(lines) != want { // one per scenario + the summary
		t.Fatalf("streamed %d flushed records, want %d", len(lines), want)
	}
	for _, raw := range lines[:4] {
		var l sweepLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil || l.Type != "result" {
			t.Fatalf("bad result line %q: %v", raw, err)
		}
	}
	var final sweepLine
	if err := json.Unmarshal([]byte(lines[4]), &final); err != nil || final.Type != "report" || final.Report == nil {
		t.Fatalf("bad summary line %q: %v", lines[4], err)
	}
	if final.Report.Batch == nil {
		t.Fatal("streamed transient sweep missing batch stats")
	}
}
