// Package server exposes the concurrent scenario-execution subsystem
// (internal/jobs) as an HTTP/JSON simulation service:
//
//	GET  /healthz            liveness + pool/cache/job counters
//	GET  /v1/stats           service counters + solver + sweep metrics
//	POST /v1/simulate        run one co-simulation scenario
//	POST /v1/dse             run a §II-C cavity design-space exploration
//	POST /v1/studies         run the paper's Fig. 6/7 policy study
//	POST /v1/sweeps          run a batched parameter sweep (?stream=1
//	                         streams NDJSON progress)
//	GET  /v1/jobs            list submitted jobs
//	GET  /v1/jobs/{id}       poll one job (?wait=1 long-polls)
//	GET  /v1/store/{key}     replica peer-fetch: raw stored bytes for a
//	                         result-store key (url-safe base64; local
//	                         lookup only, so peered replicas terminate)
//	GET  /v1/results         list registered sweeps (memory + durable)
//	GET  /v1/results/query   filter/sort/project stored sweep results
//	POST /v1/results/query   (?q= or JSON body; table/ndjson/json)
//
// The POST endpoints run synchronously by default and return the result
// body; with ?async=1 they enqueue the work on the job manager and
// immediately return 202 with a job snapshot whose id is polled via
// /v1/jobs/{id}. Identical simulate requests are deduplicated by the
// content-addressed result cache: the second request for a scenario is
// served from memory, flagged "cached": true.
//
// Sweeps — scenario grids and steady flow × utilization batches — run
// through the batched sweep engine (internal/sweep): scenarios are
// grouped structurally and each group shares one factor cache, so an
// N-point sweep pays for O(distinct matrices) factorizations instead of
// O(N). Transient grids additionally advance in lockstep
// (sweep.Engine.RunTransient): structurally identical scenarios share
// matrix assemblies and step through blocked multi-RHS solves, with
// results byte-identical to per-scenario stepping. The per-sweep
// sharing and batching outcome rides in every response and is folded
// into /v1/stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dse"
	"repro/internal/exp"
	"repro/internal/jobs"
	"repro/internal/mat"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/tsv"
	"repro/internal/units"
)

// Options tunes the service.
type Options struct {
	// Workers bounds concurrent scenario execution (<= 0: GOMAXPROCS).
	Workers int
	// CacheEntries bounds the result cache (<= 0: unbounded).
	CacheEntries int
	// QueueDepth bounds the async job backlog (<= 0: 1024).
	QueueDepth int
	// DefaultSolver is applied to simulate requests that do not name a
	// solver backend ("" keeps the library default; see mat.Backends).
	DefaultSolver string
	// DefaultOrdering is applied to simulate requests that do not name
	// a fill-reducing ordering ("" keeps the library default "auto";
	// see mat.Orderings). Direct backend only.
	DefaultOrdering string
	// Store, when set, is attached under the result cache as the durable
	// second tier: memory misses are served from it and fresh results
	// written through, so results survive restarts. The caller owns its
	// lifecycle (flush/close on shutdown); the server only reads and
	// writes through it. The sweep-results registry persists its
	// manifests here too, so /v1/results/query answers across restarts.
	Store *store.Store
	// MaxInFlight bounds concurrently executing compute requests
	// (/v1/simulate, /v1/dse, /v1/studies, /v1/sweeps). Up to the same
	// number again may wait briefly in a bounded queue; past that the
	// server sheds load immediately with 503 + Retry-After instead of
	// queueing without bound (<= 0: no admission control).
	MaxInFlight int
	// QueueWait bounds how long an admitted-to-queue request waits for
	// an execution slot before being shed with 503 (default 1s; only
	// meaningful with MaxInFlight > 0).
	QueueWait time.Duration
	// RequestTimeout is the per-request compute deadline: the request
	// context of every compute endpoint is bounded by it, and the
	// deadline propagates through sweeps, jobs and the single-flight
	// cache so a timed-out request cancels cleanly (<= 0: no deadline).
	// Async submissions (?async=1) are exempt — their work outlives the
	// submitting request by design.
	RequestTimeout time.Duration
	// DisablePlanner turns the cost-based sweep planner off: transient
	// sweeps then run the engine's fixed defaults. Planned and unplanned
	// sweeps return byte-identical results — the planner only picks
	// result-invariant execution knobs — so this is a performance
	// switch, not a semantic one.
	DisablePlanner bool
	// BenchDir is the directory searched for committed BENCH_*.json
	// cost-model snapshots ("" = current directory). When none parses,
	// the planner falls back to built-in defaults refined by
	// self-calibration at first use.
	BenchDir string
}

// Server is the simulation service. Construct with New, mount Handler,
// and Close when done.
type Server struct {
	pool            *jobs.Pool
	cache           *jobs.Cache
	mgr             *jobs.Manager
	sweeps          *sweep.Engine
	mux             *http.ServeMux
	started         time.Time
	defaultSolver   string
	defaultOrdering string
	store           *store.Store
	planner         *plan.Planner
	results         *resultsRegistry
	reqTimeout      time.Duration
	admit           *admission
	draining        atomic.Bool

	// Solver-metrics surface: per-backend aggregates of every scenario
	// freshly computed through the result cache (cache hits re-serve a
	// recorded result and are not double counted), plus the cumulative
	// sweep-sharing counters.
	solverMu  sync.Mutex
	solver    map[string]mat.SolveStats
	fill      map[string]*fillAgg
	scenarios int
	sweepAgg  SweepStats
}

// fillAgg accumulates the measured factor fill of one backend's
// freshly computed scenarios (scenarios whose preparation reports no
// fill — iterative backends without a factor — are not counted).
type fillAgg struct {
	scenarios int
	sum       float64
}

// New builds the service and its routes.
func New(opt Options) *Server {
	s := &Server{
		pool:            jobs.NewPool(opt.Workers),
		cache:           jobs.NewCache(opt.CacheEntries),
		mgr:             jobs.NewManager(opt.Workers, opt.QueueDepth),
		mux:             http.NewServeMux(),
		started:         time.Now(),
		defaultSolver:   opt.DefaultSolver,
		defaultOrdering: opt.DefaultOrdering,
		store:           opt.Store,
		solver:          map[string]mat.SolveStats{},
		fill:            map[string]*fillAgg{},
		reqTimeout:      opt.RequestTimeout,
		admit:           newAdmission(opt.MaxInFlight, opt.QueueWait),
	}
	if opt.Store != nil {
		s.cache.SetStore(opt.Store)
	}
	s.cache.SetComputeHook(func(_ string, val any) {
		if m, ok := val.(*sim.Metrics); ok {
			s.recordSolver(m)
		}
	})
	s.sweeps = &sweep.Engine{Pool: s.pool, Cache: s.cache}
	if !opt.DisablePlanner {
		dir := opt.BenchDir
		if dir == "" {
			dir = "."
		}
		// LoadLatest always returns a usable model; the error only says
		// why it fell back to defaults (then refined by self-calibration).
		model, _ := plan.LoadLatest(dir)
		s.planner = plan.New(model)
		s.sweeps.Planner = s.planner
	}
	s.results = newResultsRegistry(opt.Store)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/simulate", s.compute(s.handleSimulate))
	s.mux.HandleFunc("POST /v1/dse", s.compute(s.handleDSE))
	s.mux.HandleFunc("POST /v1/studies", s.compute(s.handleStudies))
	s.mux.HandleFunc("POST /v1/sweeps", s.compute(s.handleSweeps))
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/store/{key}", s.handleStoreGet)
	s.mux.HandleFunc("GET /v1/results", s.handleResultsList)
	s.mux.HandleFunc("GET /v1/results/query", s.handleResultsQuery)
	s.mux.HandleFunc("POST /v1/results/query", s.handleResultsQuery)
	return s
}

// handleStoreGet serves one result-store entry's raw bytes to a peer
// replica (the fleet warm-fill path). The path segment is the url-safe
// base64 of the store key. The lookup is strictly local — GetLocal,
// never the peer filler — so two replicas peered at each other cannot
// recurse; a miss is a plain 404 the peer treats as definitive.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, errors.New("no result store attached"))
		return
	}
	key, err := store.DecodeKeyPath(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	val, ok, err := s.store.GetLocal(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("key not in store"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(val)))
	_, _ = w.Write(val)
}

// recordSolver folds one freshly computed scenario's solver counters
// into the per-backend aggregates.
func (s *Server) recordSolver(m *sim.Metrics) {
	if m == nil || m.Solver.Backend == "" {
		return
	}
	s.solverMu.Lock()
	agg := s.solver[m.Solver.Backend]
	agg.Accumulate(m.Solver)
	s.solver[m.Solver.Backend] = agg
	if m.Solver.FillRatio > 0 {
		fa := s.fill[m.Solver.Backend]
		if fa == nil {
			fa = &fillAgg{}
			s.fill[m.Solver.Backend] = fa
		}
		fa.scenarios++
		fa.sum += m.Solver.FillRatio
	}
	s.scenarios++
	s.solverMu.Unlock()
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (shared with embedding callers).
func (s *Server) Cache() *jobs.Cache { return s.cache }

// Close drains the async job workers.
func (s *Server) Close() { s.mgr.Close() }

// errorJSON is the uniform failure body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// decodeBody strictly decodes the JSON request body into v. An empty
// body is allowed and leaves v at its defaults.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// wantFlag reports a truthy query parameter (1/true/yes).
func wantFlag(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// dispatch runs compute synchronously and writes its result, or — with
// ?async=1 — submits it to the job manager and writes the queued job
// snapshot with status 202.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, kind string, compute func(ctx context.Context) (any, error)) {
	if wantFlag(r, "async") {
		view, err := s.mgr.Submit(kind, compute)
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, jobs.ErrManagerClosed) {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, view)
		return
	}
	res, err := compute(r.Context())
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			// The per-request compute deadline fired: a timeout, not a
			// bad request.
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptime_s":      time.Since(s.started).Seconds(),
		"workers":       s.pool.Workers(),
		"cache_entries": s.cache.Len(),
		"cache_stats":   s.cache.Stats(),
		"jobs":          s.mgr.Count(),
	})
}

// StatsResponse is the body of /v1/stats: service counters plus the
// per-backend linear-solver metrics aggregated over every scenario the
// service has computed.
type StatsResponse struct {
	UptimeS      float64 `json:"uptime_s"`
	Workers      int     `json:"workers"`
	CacheEntries int     `json:"cache_entries"`
	// CacheStats reports hit/miss counters; hits re-serve an already
	// recorded solve, so they do not grow the solver aggregates.
	CacheStats jobs.CacheStats `json:"cache_stats"`
	Jobs       int             `json:"jobs"`
	// ScenariosComputed counts fresh (non-cached) scenario solves.
	ScenariosComputed int `json:"scenarios_computed"`
	// Solver maps backend name → aggregated work counters, including
	// any preconditioner fallback reason (e.g. an ILU construction
	// failure downgraded to Jacobi).
	Solver map[string]mat.SolveStats `json:"solver"`
	// SolverFill maps backend name → mean measured factor fill ratio
	// nnz(L+U)/nnz(A) over its freshly computed scenarios (absent for
	// backends whose preparation carries no factor).
	SolverFill map[string]float64 `json:"solver_fill,omitempty"`
	// Backends lists the registered solver backends accepted by the
	// "solver" field of /v1/simulate requests.
	Backends []string `json:"backends"`
	// DefaultSolver is applied to requests that omit "solver".
	DefaultSolver string `json:"default_solver"`
	// Orderings lists the registered fill-reducing orderings accepted
	// by the "ordering" field of /v1/simulate requests.
	Orderings []string `json:"orderings"`
	// DefaultOrdering is applied to requests that omit "ordering".
	DefaultOrdering string `json:"default_ordering"`
	// OrderingFactorNs maps concrete ordering → total wall-clock
	// nanoseconds the sweep engines spent in physical factorisations
	// under it (fill and counts are in Sweeps.Prep.Orderings; wall time
	// is nondeterministic so it is reported only here).
	OrderingFactorNs map[string]int64 `json:"ordering_factor_ns,omitempty"`
	// Sweeps aggregates the sweep engine's outcomes — factorizations
	// paid versus shared across every sweep the service has run.
	Sweeps SweepStats `json:"sweeps"`
	// Store, present when a durable result store is attached, reports
	// WAL/pool/shard counters and per-shard sizes (including any shards
	// wedged read-only after a durability failure).
	Store *store.Stats `json:"store,omitempty"`
	// Admission, present when MaxInFlight is configured, reports the
	// compute-endpoint overload guard: in-flight/queued gauges and
	// admitted/shed counters.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Planner, present when the cost-based sweep planner is enabled,
	// reports its cost-model provenance and cumulative estimate-vs-
	// actual totals (actual is wall time: nondeterministic, so it lives
	// only on this diagnostic surface).
	Planner *plan.Stats `json:"planner,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.solverMu.Lock()
	solver := make(map[string]mat.SolveStats, len(s.solver))
	for k, v := range s.solver {
		solver[k] = v
	}
	var fill map[string]float64
	if len(s.fill) > 0 {
		fill = make(map[string]float64, len(s.fill))
		for k, v := range s.fill {
			fill[k] = v.sum / float64(v.scenarios)
		}
	}
	scenarios := s.scenarios
	sweeps := s.sweepAgg
	s.solverMu.Unlock()
	def := s.defaultSolver
	if def == "" {
		def = mat.DefaultBackend
	}
	defOrd := s.defaultOrdering
	if defOrd == "" {
		defOrd = mat.DefaultOrdering
	}
	resp := &StatsResponse{
		UptimeS:           time.Since(s.started).Seconds(),
		Workers:           s.pool.Workers(),
		CacheEntries:      s.cache.Len(),
		CacheStats:        s.cache.Stats(),
		Jobs:              s.mgr.Count(),
		ScenariosComputed: scenarios,
		Solver:            solver,
		SolverFill:        fill,
		Backends:          mat.Backends(),
		DefaultSolver:     def,
		Orderings:         mat.Orderings(),
		DefaultOrdering:   defOrd,
		OrderingFactorNs:  s.sweeps.OrderingFactorNs(),
		Sweeps:            sweeps,
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	if s.admit != nil {
		st := s.admit.stats()
		resp.Admission = &st
	}
	if s.planner != nil {
		ps := s.planner.Stats()
		resp.Planner = &ps
	}
	writeJSON(w, http.StatusOK, resp)
}

// SimulateResponse is the body of a synchronous /v1/simulate call.
type SimulateResponse struct {
	// Key is the scenario's content address in the result cache.
	Key string `json:"key"`
	// Cached reports whether the metrics were served from the cache.
	Cached  bool          `json:"cached"`
	Metrics *sim.Metrics  `json:"metrics"`
	Request jobs.Scenario `json:"request"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var sc jobs.Scenario
	if err := decodeBody(r, &sc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if sc.Solver == "" {
		sc.Solver = s.defaultSolver
	}
	if sc.Ordering == "" {
		sc.Ordering = s.defaultOrdering
	}
	sc = sc.Normalized()
	if err := sc.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, "simulate", func(ctx context.Context) (any, error) {
		// The solve runs under the shared pool bound so ad-hoc
		// requests and study sweeps compete for the same -workers
		// slots.
		var m *sim.Metrics
		var hit bool
		err := s.pool.Do(ctx, func(ctx context.Context) error {
			var err error
			m, hit, err = s.cache.Metrics(ctx, sc)
			return err
		})
		if err != nil {
			return nil, err
		}
		return &SimulateResponse{Key: sc.Key(), Cached: hit, Metrics: m, Request: sc}, nil
	})
}

// DSERequest parameterizes a §II-C cavity design-space exploration.
// The zero value reproduces the paper's Table-I space: a 60 W tier,
// 11.5×10 mm die, 40 µm TSVs at 150 µm pitch, water, 10–32.3 ml/min.
type DSERequest struct {
	TierPowerW      float64 `json:"tier_power_w,omitempty"`
	FootprintWMM    float64 `json:"footprint_w_mm,omitempty"`
	FootprintHMM    float64 `json:"footprint_h_mm,omitempty"`
	DieThicknessUM  float64 `json:"die_thickness_um,omitempty"`
	DieConductivity float64 `json:"die_conductivity_w_mk,omitempty"`
	InletC          float64 `json:"inlet_c,omitempty"`
	LimitC          float64 `json:"limit_c,omitempty"`
	TSVDiameterUM   float64 `json:"tsv_diameter_um,omitempty"`
	TSVPitchUM      float64 `json:"tsv_pitch_um,omitempty"`
	TSVKeepOutUM    float64 `json:"tsv_keepout_um,omitempty"`
	FlowMinMlPerMin float64 `json:"flow_min_ml_min,omitempty"`
	FlowMaxMlPerMin float64 `json:"flow_max_ml_min,omitempty"`
	FlowLevels      int     `json:"flow_levels,omitempty"`
}

func (q DSERequest) withDefaults() DSERequest {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&q.TierPowerW, 60)
	def(&q.FootprintWMM, 11.5)
	def(&q.FootprintHMM, 10)
	def(&q.DieThicknessUM, 150)
	def(&q.DieConductivity, 130)
	def(&q.InletC, 27)
	def(&q.LimitC, 85)
	def(&q.TSVDiameterUM, 40)
	def(&q.TSVPitchUM, 150)
	def(&q.TSVKeepOutUM, 10)
	def(&q.FlowMinMlPerMin, 10)
	def(&q.FlowMaxMlPerMin, 32.3)
	if q.FlowLevels == 0 {
		q.FlowLevels = 8
	}
	return q
}

// DSEEvaluation is the wire form of one scored design point.
type DSEEvaluation struct {
	Design     string  `json:"design"`
	FlowMlMin  float64 `json:"flow_ml_min"`
	JunctionC  float64 `json:"junction_c"`
	PumpPowerW float64 `json:"pump_power_w"`
	COP        float64 `json:"cop"`
	Feasible   bool    `json:"feasible"`
}

// DSEResponse is the body of a /v1/dse call.
type DSEResponse struct {
	Evaluations []DSEEvaluation `json:"evaluations"`
	ParetoFront []DSEEvaluation `json:"pareto_front"`
	Best        *DSEEvaluation  `json:"best,omitempty"`
	BestError   string          `json:"best_error,omitempty"`
}

func toWireEvals(evals []dse.Evaluation) []DSEEvaluation {
	out := make([]DSEEvaluation, 0, len(evals))
	for _, e := range evals {
		out = append(out, DSEEvaluation{
			Design:     e.Geometry.Label(),
			FlowMlMin:  units.M3PerSToMlPerMin(e.FlowM3s),
			JunctionC:  e.JunctionC,
			PumpPowerW: e.PumpPowerW,
			COP:        e.COP(),
			Feasible:   e.Feasible,
		})
	}
	return out
}

func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	var req DSERequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.withDefaults()
	duty := dse.Duty{
		TierPower:       req.TierPowerW,
		FootprintW:      req.FootprintWMM * 1e-3,
		FootprintH:      req.FootprintHMM * 1e-3,
		DieThickness:    req.DieThicknessUM * 1e-6,
		DieConductivity: req.DieConductivity,
		InletC:          req.InletC,
		LimitC:          req.LimitC,
	}
	arr := tsv.Array{
		Via:   tsv.Via{Diameter: req.TSVDiameterUM * 1e-6, Depth: 380e-6, Liner: 200e-9},
		Pitch: req.TSVPitchUM * 1e-6,
		KOZ:   req.TSVKeepOutUM * 1e-6,
	}
	space, err := dse.DefaultSpace(duty, arr,
		units.MlPerMinToM3PerS(req.FlowMinMlPerMin),
		units.MlPerMinToM3PerS(req.FlowMaxMlPerMin),
		req.FlowLevels)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, "dse", func(ctx context.Context) (any, error) {
		evals, err := space.ExploreParallel(ctx, s.pool)
		if err != nil {
			return nil, err
		}
		resp := &DSEResponse{
			Evaluations: toWireEvals(evals),
			ParetoFront: toWireEvals(dse.ParetoFront(evals)),
		}
		if best, err := dse.BestUnderLimit(evals); err != nil {
			resp.BestError = err.Error()
		} else {
			wire := toWireEvals([]dse.Evaluation{best})[0]
			resp.Best = &wire
		}
		return resp, nil
	})
}

// StudyRequest parameterizes the Fig. 6/7 policy study.
type StudyRequest struct {
	// Steps, Grid, Seed are exp.Options (0 = full-fidelity defaults:
	// 300 s traces on a 16×16 grid, seed 1).
	Steps int   `json:"steps,omitempty"`
	Grid  int   `json:"grid,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
	// Solver selects the linear-solver backend for every scenario of
	// the study ("" = the server's default backend).
	Solver string `json:"solver,omitempty"`
	// Savings additionally runs the per-workload §IV-A savings study.
	Savings bool `json:"savings,omitempty"`
}

// StudyResponse is the body of a /v1/studies call: the structured
// per-configuration results plus the rendered paper tables.
type StudyResponse struct {
	Results []*exp.StudyResult  `json:"results"`
	Fig6    string              `json:"fig6"`
	Fig7    string              `json:"fig7"`
	Savings []exp.SavingsDetail `json:"savings,omitempty"`
}

func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	var req StudyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Solver == "" {
		req.Solver = s.defaultSolver
	}
	if !mat.KnownBackend(req.Solver) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown solver backend %q (want one of %v)", req.Solver, mat.Backends()))
		return
	}
	opt := exp.Options{Steps: req.Steps, Grid: req.Grid, Seed: req.Seed, Solver: req.Solver}
	s.dispatch(w, r, "study", func(ctx context.Context) (any, error) {
		results, err := exp.RunStudyOn(ctx, s.pool, s.cache, opt)
		if err != nil {
			return nil, err
		}
		resp := &StudyResponse{
			Results: results,
			Fig6:    exp.Fig6(results).String(),
			Fig7:    exp.Fig7(results).String(),
		}
		if req.Savings {
			resp.Savings, err = exp.SavingsStudyOn(ctx, s.pool, s.cache, opt)
			if err != nil {
				return nil, err
			}
		}
		return resp, nil
	})
}

// SweepStats aggregates the sweep engine's outcomes across every sweep
// the service has completed (grid and steady alike) — the /v1/stats
// surface for factorization sharing and lockstep batching.
type SweepStats struct {
	// Sweeps counts completed sweep requests.
	Sweeps int `json:"sweeps"`
	// Scenarios counts points across those sweeps.
	Scenarios int `json:"scenarios"`
	// Errors counts failed points.
	Errors int `json:"errors"`
	// CacheHits counts points served without a fresh solve.
	CacheHits int `json:"cache_hits"`
	// Groups counts structural groups.
	Groups int `json:"groups"`
	// Prep aggregates physical preparation work: Factorizations paid,
	// Shares avoided via per-group factor caches.
	Prep mat.PrepStats `json:"prep"`
	// Batch aggregates the lockstep multi-RHS stepping of transient grid
	// sweeps: blocked solves performed, columns advanced together, and
	// the matrix assemblies shared group-wide.
	Batch thermal.BatchStats `json:"batch"`
	// Assemblies aggregates the physical matrix-assembly work of the
	// batched sweeps (builds paid, adoptions avoided).
	Assemblies thermal.AsmStats `json:"assemblies"`
}

// recordSweep folds one completed sweep into the service aggregates.
func (s *Server) recordSweep(scenarios, errors, cacheHits, groups int, prep mat.PrepStats, batch *sweep.BatchReport) {
	s.solverMu.Lock()
	s.sweepAgg.Sweeps++
	s.sweepAgg.Scenarios += scenarios
	s.sweepAgg.Errors += errors
	s.sweepAgg.CacheHits += cacheHits
	s.sweepAgg.Groups += groups
	s.sweepAgg.Prep.Accumulate(prep)
	if batch != nil {
		s.sweepAgg.Batch.Accumulate(batch.BatchStats)
		s.sweepAgg.Assemblies.Accumulate(batch.Assemblies)
	}
	s.solverMu.Unlock()
}

// SweepRequest parameterizes POST /v1/sweeps: exactly one of the two
// sweep kinds.
type SweepRequest struct {
	// Grid is a transient scenario sweep — the cartesian product of the
	// given axes, each point a full co-simulation.
	Grid *sweep.Grid `json:"grid,omitempty"`
	// Steady is a steady-state flow × utilization sweep on one stack.
	Steady *sweep.SteadySweep `json:"steady,omitempty"`
}

// sweepLine is one NDJSON line of a streamed sweep (?stream=1): a
// progress line carries Result or Point; the final line carries Report
// or SteadyReport (with the already-streamed point lists elided).
type sweepLine struct {
	Type         string              `json:"type"` // "result", "point", "report", "error"
	Result       *sweep.Result       `json:"result,omitempty"`
	Point        *sweep.SteadyPoint  `json:"point,omitempty"`
	Report       *sweep.Report       `json:"report,omitempty"`
	SteadyReport *sweep.SteadyReport `json:"steady_report,omitempty"`
	Error        string              `json:"error,omitempty"`
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Grid == nil) == (req.Steady == nil) {
		writeError(w, http.StatusBadRequest,
			errors.New(`want exactly one of "grid" or "steady"`))
		return
	}
	if req.Grid != nil && len(req.Grid.Solvers) == 0 && s.defaultSolver != "" {
		req.Grid.Solvers = []string{s.defaultSolver}
	}
	if req.Steady != nil && req.Steady.Solver == "" && s.defaultSolver != "" {
		req.Steady.Solver = s.defaultSolver
	}
	// Validate the whole request up front so a streamed sweep fails with
	// a status code instead of a 200 followed by a mid-stream error line.
	var scenarios []jobs.Scenario
	if req.Grid != nil {
		var err error
		if scenarios, err = req.Grid.Expand(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		for i, sc := range scenarios {
			if err := sc.Validate(); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("grid point %d: %w", i, err))
				return
			}
		}
	}
	if req.Steady != nil {
		if err := req.Steady.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if wantFlag(r, "stream") {
		s.streamSweep(w, r, req, scenarios)
		return
	}
	explain := wantFlag(r, "explain")
	s.dispatch(w, r, "sweep", func(ctx context.Context) (any, error) {
		if req.Steady != nil {
			rep, err := s.sweeps.RunSteady(ctx, *req.Steady, nil)
			if err != nil {
				return nil, err
			}
			s.recordSweep(rep.Scenarios, rep.Errors, 0, 1, rep.Prep, nil)
			return rep, nil
		}
		run := s.sweeps.RunTransient
		if explain {
			// ?explain=1 attaches Report.Plan: the planner's per-group
			// candidate tables with estimated and measured costs.
			run = s.sweeps.RunTransientExplained
		}
		rep, err := run(ctx, scenarios, nil)
		if err != nil {
			return nil, err
		}
		s.recordSweep(rep.Scenarios, rep.Errors, rep.CacheHits, len(rep.Groups), rep.Prep, rep.Batch)
		rep.SweepID, _ = s.results.Register(rep)
		return rep, nil
	})
}

// streamSweep writes the sweep as NDJSON: one line per completed point,
// then the summary report (point lists elided — they were streamed).
// Every record is flushed as soon as it is encoded — through
// http.ResponseController, so middleware-wrapped writers flush too —
// so a long transient sweep streams incrementally instead of buffering
// until completion.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, scenarios []jobs.Scenario) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	line := func(l sweepLine) {
		// Streaming is exempt from the server-wide WriteTimeout: each
		// flushed line pushes the connection's write deadline out, so a
		// long sweep keeps streaming while a stalled client still times
		// out within a line interval. Ignore errors: not every wrapped
		// writer supports deadlines (httptest's recorder does not).
		_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		_ = enc.Encode(l)
		_ = rc.Flush()
	}
	if req.Steady != nil {
		rep, err := s.sweeps.RunSteady(r.Context(), *req.Steady, func(p sweep.SteadyPoint) {
			line(sweepLine{Type: "point", Point: &p})
		})
		if err != nil {
			line(sweepLine{Type: "error", Error: err.Error()})
			return
		}
		s.recordSweep(rep.Scenarios, rep.Errors, 0, 1, rep.Prep, nil)
		summary := *rep
		summary.Points = nil
		line(sweepLine{Type: "report", SteadyReport: &summary})
		return
	}
	rep, err := s.sweeps.RunTransient(r.Context(), scenarios, func(res sweep.Result) {
		line(sweepLine{Type: "result", Result: &res})
	})
	if err != nil {
		line(sweepLine{Type: "error", Error: err.Error()})
		return
	}
	s.recordSweep(rep.Scenarios, rep.Errors, rep.CacheHits, len(rep.Groups), rep.Prep, rep.Batch)
	rep.SweepID, _ = s.results.Register(rep)
	summary := *rep
	summary.Results = nil
	line(sweepLine{Type: "report", Report: &summary})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wantFlag(r, "wait") {
		// A long-poll may legitimately outlast the server-wide
		// WriteTimeout; clear the write deadline for this response (no-op
		// where unsupported).
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
		view, err := s.mgr.Wait(r.Context(), id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
		return
	}
	view, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}
