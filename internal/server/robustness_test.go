package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// postSimulate sends one simulate request for a distinct tiny scenario.
func postSimulate(ts *httptest.Server, seed int64) (*http.Response, error) {
	b, _ := json.Marshal(jobs.Scenario{
		Tiers: 2, Cooling: "air", Policy: "LB", Workload: "web",
		Steps: 2, Grid: 8, Seed: seed,
	})
	return http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(b))
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decode[StatsResponse](t, resp, http.StatusOK)
}

// TestOverloadShedsPromptly saturates MaxInFlight=1 plus its one queue
// slot and requires the next request to be shed immediately with 503 +
// Retry-After instead of queueing without bound.
func TestOverloadShedsPromptly(t *testing.T) {
	s := New(Options{Workers: 2, MaxInFlight: 1, QueueWait: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// The first request holds the single execution slot for ~1s via an
	// injected compute latency; later requests compute fast.
	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "jobs.compute", Mode: fault.ModeLatency, Delay: time.Second, Times: 1,
	}))

	type outcome struct {
		status int
		err    error
	}
	results := make(chan outcome, 2)
	launch := func(seed int64) {
		go func() {
			resp, err := postSimulate(ts, seed)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			resp.Body.Close()
			results <- outcome{status: resp.StatusCode}
		}()
	}
	waitGauge := func(name string, read func(AdmissionStats) int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := getStats(t, ts)
			if st.Admission != nil && read(*st.Admission) >= 1 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("admission gauge %s never reached 1: %+v", name, st.Admission)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	launch(11) // takes the slot, sleeps 1s in compute
	waitGauge("in_flight", func(a AdmissionStats) int { return a.InFlight })
	launch(12) // fills the single queue slot
	waitGauge("queued", func(a AdmissionStats) int { return a.Queued })

	// Slot busy, queue full: this one must be shed promptly.
	start := time.Now()
	resp, err := postSimulate(ts, 13)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("shed took %v, want immediate", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload status = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}

	// The slot holder and the queued request both complete normally.
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil || o.status != http.StatusOK {
			t.Fatalf("admitted request %d: status=%d err=%v", i, o.status, o.err)
		}
	}
	st := getStats(t, ts)
	if st.Admission == nil || st.Admission.Shed < 1 || st.Admission.Admitted < 2 {
		t.Fatalf("admission stats %+v, want >=1 shed and >=2 admitted", st.Admission)
	}
	if st.Admission.InFlight != 0 || st.Admission.Queued != 0 {
		t.Fatalf("gauges did not drain: %+v", st.Admission)
	}
}

// TestRequestTimeoutReturns504: a compute request that outlives
// RequestTimeout is cancelled and answered with 504, not left hanging.
func TestRequestTimeoutReturns504(t *testing.T) {
	s := New(Options{Workers: 2, RequestTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Each of the 6 grid points pays 60ms of injected latency on 2
	// workers: the sweep cannot finish inside the 100ms deadline.
	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "jobs.compute", Mode: fault.ModeLatency, Delay: 60 * time.Millisecond,
	}))
	body, _ := json.Marshal(SweepRequest{Grid: &sweep.Grid{
		Coolings: []string{"air"}, Workloads: []string{"web"},
		Seeds: []int64{21, 22, 23, 24, 25, 26},
		Steps: 2, Res: 8,
	}})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timed-out request took %v to answer", elapsed)
	}
}

// TestAsyncExemptFromRequestTimeout: ?async=1 submissions outlive the
// submitting request's deadline by design.
func TestAsyncExemptFromRequestTimeout(t *testing.T) {
	s := New(Options{Workers: 2, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "jobs.compute", Mode: fault.ModeLatency, Delay: 200 * time.Millisecond,
	}))
	resp, err := postSimulateAsync(ts, 31)
	if err != nil {
		t.Fatal(err)
	}
	view := decode[jobs.JobView](t, resp, http.StatusAccepted)

	// The job completes successfully despite running far past the
	// request deadline.
	wresp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	final := decode[jobs.JobView](t, wresp, http.StatusOK)
	if final.Status != jobs.StatusDone {
		t.Fatalf("async job status = %q (err %q), want done", final.Status, final.Error)
	}
}

func postSimulateAsync(ts *httptest.Server, seed int64) (*http.Response, error) {
	b, _ := json.Marshal(jobs.Scenario{
		Tiers: 2, Cooling: "air", Policy: "LB", Workload: "web",
		Steps: 2, Grid: 8, Seed: seed,
	})
	return http.Post(ts.URL+"/v1/simulate?async=1", "application/json", bytes.NewReader(b))
}

// TestClientDisconnectDoesNotPoisonSingleFlight: a client that
// disconnects mid-sweep cancels its compute, and an identical follow-up
// request computes fresh instead of inheriting the cancelled flight's
// error from the single-flight cache.
func TestClientDisconnectDoesNotPoisonSingleFlight(t *testing.T) {
	_, ts := newTestServer(t)

	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "jobs.compute", Mode: fault.ModeLatency, Delay: 300 * time.Millisecond,
	}))
	body, _ := json.Marshal(SweepRequest{Grid: &sweep.Grid{
		Coolings: []string{"air"}, Workloads: []string{"web"},
		Seeds: []int64{41, 42}, Steps: 2, Res: 8,
	}})

	// First attempt: disconnect while the sweep is mid-compute.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/sweeps", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("expected the disconnecting request to fail client-side")
	}

	// Give the server a moment to observe the cancellation, then drop
	// the injected latency and retry the identical request.
	time.Sleep(50 * time.Millisecond)
	fault.Disable()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[sweep.Report](t, resp, http.StatusOK)
	if rep.Errors != 0 || rep.Scenarios != 2 {
		t.Fatalf("follow-up sweep: %d/%d errors, want clean", rep.Errors, rep.Scenarios)
	}
	for _, r := range rep.Results {
		if r.Metrics == nil || r.Error != "" {
			t.Fatalf("follow-up result %d poisoned: err=%q", r.Index, r.Error)
		}
	}
}

// TestReadyzDrainSequence: /readyz reflects drain state while /healthz
// keeps reporting liveness.
func TestReadyzDrainSequence(t *testing.T) {
	s, ts := newTestServer(t)

	check := func(wantReady int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantReady {
			t.Fatalf("/readyz = %d, want %d", resp.StatusCode, wantReady)
		}
		hresp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz = %d, want 200 regardless of drain", hresp.StatusCode)
		}
	}
	check(http.StatusOK)
	s.SetDraining(true)
	check(http.StatusServiceUnavailable)
	s.SetDraining(false)
	check(http.StatusOK)
}

// TestReadyzReflectsWedgedStore: a store wedged by a durability failure
// flips /readyz to 503 and surfaces in /v1/stats, while compute
// requests keep succeeding (degraded to cache-only).
func TestReadyzReflectsWedgedStore(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir(), Shards: 1, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 2, Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close(); st.Close() })

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with healthy store = %d", resp.StatusCode)
	}

	// Wedge the store's only shard with one injected fsync failure.
	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "store.wal.fsync", Mode: fault.ModeError, Times: 1,
	}))
	if err := st.Put("doomed", []byte("x")); err == nil {
		t.Fatal("Put with failing fsync was acknowledged")
	}
	fault.Disable()

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with wedged store = %d, want 503", resp.StatusCode)
	}
	stats := getStats(t, ts)
	if stats.Store == nil || stats.Store.WedgedShards != 1 {
		t.Fatalf("stats.store.wedged_shards missing: %+v", stats.Store)
	}

	// Compute still works: write-through failures degrade to cache-only.
	for seed := int64(51); seed < 54; seed++ {
		sresp, err := postSimulate(ts, seed)
		if err != nil {
			t.Fatal(err)
		}
		sim := decode[SimulateResponse](t, sresp, http.StatusOK)
		if sim.Metrics == nil {
			t.Fatalf("seed %d: nil metrics from degraded server", seed)
		}
	}
	if got := s.Cache().Stats().StoreErrors; got == 0 {
		t.Fatal("degraded write-throughs not counted in StoreErrors")
	}
}

// TestStreamingExemptFromWriteDeadline: the NDJSON sweep stream extends
// its write deadline per flushed line, so a sweep that takes longer
// than the server's WriteTimeout still streams to completion.
func TestStreamingExemptFromWriteDeadline(t *testing.T) {
	s := New(Options{Workers: 2})
	t.Cleanup(s.Close)
	srv := httptest.NewUnstartedServer(s.Handler())
	srv.Config.WriteTimeout = 250 * time.Millisecond
	srv.Start()
	t.Cleanup(srv.Close)

	// ~8 scenarios × 60ms injected latency on 2 workers ≈ 240ms+ of
	// compute — beyond WriteTimeout measured from request start, but
	// each streamed line pushes the deadline out.
	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "jobs.compute", Mode: fault.ModeLatency, Delay: 60 * time.Millisecond,
	}))
	var seeds []int64
	for i := int64(61); i < 69; i++ {
		seeds = append(seeds, i)
	}
	body, _ := json.Marshal(SweepRequest{Grid: &sweep.Grid{
		Coolings: []string{"air"}, Workloads: []string{"web"},
		Seeds: seeds, Steps: 2, Res: 8,
	}})
	resp, err := http.Post(srv.URL+"/v1/sweeps?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var lines, results int
	var sawReport bool
	for dec.More() {
		var l sweepLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("stream truncated after %d lines: %v", lines, err)
		}
		lines++
		switch l.Type {
		case "result":
			results++
		case "report":
			sawReport = true
		case "error":
			t.Fatalf("stream error line: %s", l.Error)
		}
	}
	if results != len(seeds) || !sawReport {
		t.Fatalf("streamed %d results (want %d), report=%v", results, len(seeds), sawReport)
	}
}

// TestShedWhileQueueTimesOut: a request admitted to the queue but never
// reaching a slot within QueueWait is shed with 503 rather than waiting
// forever.
func TestShedWhileQueueTimesOut(t *testing.T) {
	s := New(Options{Workers: 2, MaxInFlight: 1, QueueWait: 80 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{
		Point: "jobs.compute", Mode: fault.ModeLatency, Delay: time.Second, Times: 1,
	}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, err := postSimulate(ts, 71); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := getStats(t, ts); st.Admission != nil && st.Admission.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot holder never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	resp, err := postSimulate(ts, 72)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-too-long status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if elapsed < 50*time.Millisecond || elapsed > 700*time.Millisecond {
		t.Fatalf("queue-wait shed after %v, want ≈QueueWait", elapsed)
	}
	<-done
}
