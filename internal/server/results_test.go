package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/query"
)

func queryResults(t *testing.T, url, q, format, sweepID string) (*http.Response, string) {
	t.Helper()
	req := url + "/v1/results/query?q=" + strings.ReplaceAll(q, " ", "+")
	if format != "" {
		req += "&format=" + format
	}
	if sweepID != "" {
		req += "&sweep=" + sweepID
	}
	resp, err := http.Get(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestResultsQueryEndpoint covers the in-memory tier end to end: a
// sweep registers itself, GET /v1/results lists it, and
// /v1/results/query answers filter+sort+project expressions in every
// format with the right Content-Type — the query surface's golden
// shape test.
func TestResultsQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	rep := runSweep(t, ts.URL)
	if rep.SweepID == "" || !strings.HasPrefix(rep.SweepID, "sw-") {
		t.Fatalf("sweep report without registry id: %q", rep.SweepID)
	}

	// The registry lists the sweep as memory-resident (no store attached).
	resp, err := http.Get(ts.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]SweepInfo](t, resp, http.StatusOK)
	if len(list["sweeps"]) != 1 {
		t.Fatalf("results list: %+v", list)
	}
	if info := list["sweeps"][0]; info.ID != rep.SweepID || !info.InMemory || info.Durable || info.Scenarios != 4 {
		t.Fatalf("sweep info: %+v", info)
	}

	// Table output: header row carries the projection, rows align, no
	// trailing whitespace, filter+sort+limit applied.
	q := "cooling=liquid sort:-max_temp limit:2 fields:sweep,index,cooling,max_temp"
	resp, body := queryResults(t, ts.URL, q, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table query: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("table Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 3 { // header + 2 liquid rows
		t.Fatalf("table rows:\n%s", body)
	}
	if fields := strings.Fields(lines[0]); strings.Join(fields, ",") != "sweep,index,cooling,max_temp" {
		t.Fatalf("table header: %q", lines[0])
	}
	for _, line := range lines {
		if strings.TrimRight(line, " ") != line {
			t.Fatalf("trailing whitespace in %q", line)
		}
		if !strings.Contains(line, "max_temp") && !strings.Contains(line, "liquid") {
			t.Fatalf("unfiltered row: %q", line)
		}
	}

	// NDJSON: one JSON object per row, keys exactly the projection.
	resp, body = queryResults(t, ts.URL, q, "ndjson", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson Content-Type = %q", ct)
	}
	var prevTemp float64
	scanner := bufio.NewScanner(strings.NewReader(body))
	rows := 0
	for scanner.Scan() {
		var row map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &row); err != nil {
			t.Fatalf("ndjson line %q: %v", scanner.Text(), err)
		}
		if len(row) != 4 || row["cooling"] != "liquid" || row["sweep"] != rep.SweepID {
			t.Fatalf("ndjson row: %v", row)
		}
		temp, ok := row["max_temp"].(float64)
		if !ok || temp <= 0 {
			t.Fatalf("ndjson max_temp: %v", row["max_temp"])
		}
		if rows > 0 && temp > prevTemp {
			t.Fatalf("sort:-max_temp violated: %v after %v", temp, prevTemp)
		}
		prevTemp = temp
		rows++
	}
	if rows != 2 {
		t.Fatalf("ndjson rows = %d, want 2", rows)
	}

	// POST body form with json format: an array of the same rows.
	post, err := http.Post(ts.URL+"/v1/results/query", "application/json",
		strings.NewReader(`{"query":"`+q+`","format":"json"}`))
	if err != nil {
		t.Fatal(err)
	}
	arr := decode[[]map[string]any](t, post, http.StatusOK)
	if len(arr) != 2 || arr[0]["cooling"] != "liquid" {
		t.Fatalf("POST json rows: %v", arr)
	}

	// An empty query returns every row under the default projection.
	if _, body = queryResults(t, ts.URL, "", "ndjson", ""); strings.Count(body, "\n") != 4 {
		t.Fatalf("unfiltered ndjson:\n%s", body)
	}
}

// TestResultsQueryErrors pins the failure modes: parse errors and
// unknown projected fields are 400s naming the queryable fields,
// unknown sweep ids are 404s, unknown formats are 400s.
func TestResultsQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	runSweep(t, ts.URL)

	for _, tc := range []struct {
		q, format, sweep string
		status           int
		wantSub          string
	}{
		{q: "max_temp<", status: http.StatusBadRequest, wantSub: "fields:"},
		{q: "limit:zero", status: http.StatusBadRequest, wantSub: "fields:"},
		{q: "fields:nope", status: http.StatusBadRequest, wantSub: "unknown field"},
		{q: "", format: "xml", status: http.StatusBadRequest, wantSub: "format"},
		{q: "", sweep: "sw-doesnotexist00", status: http.StatusNotFound, wantSub: "unknown sweep"},
	} {
		resp, body := queryResults(t, ts.URL, tc.q, tc.format, tc.sweep)
		if resp.StatusCode != tc.status {
			t.Fatalf("q=%q format=%q: status %d, want %d (%s)", tc.q, tc.format, resp.StatusCode, tc.status, body)
		}
		if !strings.Contains(body, tc.wantSub) {
			t.Fatalf("q=%q error body %q missing %q", tc.q, body, tc.wantSub)
		}
		// Parse failures list the queryable fields so the error is
		// self-documenting.
		if strings.Contains(tc.wantSub, "fields:") && !strings.Contains(body, "max_temp") {
			t.Fatalf("error body does not enumerate fields: %s", body)
		}
	}
}

// TestResultsQueryAfterRestart is the durability half of the query
// surface: a restarted store-backed server answers queries over sweeps
// run before the restart — rebuilt from manifests plus stored metrics,
// nothing recomputed.
func TestResultsQueryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openTestStore(t, dir)
	s1 := New(Options{Workers: 2, QueueDepth: 16, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())
	rep := runSweep(t, ts1.URL)
	ts1.Close()
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2 := New(Options{Workers: 2, QueueDepth: 16, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	// The restarted registry lists the sweep as durable, not in memory.
	resp, err := http.Get(ts2.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]SweepInfo](t, resp, http.StatusOK)
	if len(list["sweeps"]) != 1 {
		t.Fatalf("restarted results list: %+v", list)
	}
	if info := list["sweeps"][0]; info.ID != rep.SweepID || info.InMemory || !info.Durable || info.Scenarios != 4 {
		t.Fatalf("restarted sweep info: %+v", info)
	}

	// Metric filters answer from the store — and restricting to the
	// sweep id hits the manifest path directly.
	for _, sweepID := range []string{"", rep.SweepID} {
		resp, body := queryResults(t, ts2.URL,
			"max_temp>0 sort:index fields:sweep,index,policy,max_temp,pump_power", "ndjson", sweepID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restart query (sweep=%q): %d %s", sweepID, resp.StatusCode, body)
		}
		lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
		if len(lines) != 4 {
			t.Fatalf("restart query rows (sweep=%q):\n%s", sweepID, body)
		}
		for _, line := range lines {
			var row map[string]any
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				t.Fatal(err)
			}
			if row["sweep"] != rep.SweepID || row["max_temp"].(float64) <= 0 {
				t.Fatalf("restart row: %v", row)
			}
		}
	}

	// Answering those queries recomputed nothing.
	if stats := getStatsResp(t, ts2.URL); stats.ScenariosComputed != 0 {
		t.Fatalf("restarted server recomputed %d scenarios to answer queries", stats.ScenariosComputed)
	}

	// Re-running the identical sweep re-registers under the same
	// content-addressed id: the list stays at one sweep, now in both tiers.
	if rep2 := runSweep(t, ts2.URL); rep2.SweepID != rep.SweepID {
		t.Fatalf("sweep id not content-addressed: %q vs %q", rep2.SweepID, rep.SweepID)
	}
	resp, err = http.Get(ts2.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	list = decode[map[string][]SweepInfo](t, resp, http.StatusOK)
	if len(list["sweeps"]) != 1 || !list["sweeps"][0].InMemory || !list["sweeps"][0].Durable {
		t.Fatalf("re-registered sweep info: %+v", list)
	}
}

// TestSweepExplainFlag: ?explain=1 attaches the planner's per-group
// candidate tables to the sweep report; plain requests stay free of
// wall-time-bearing plan blocks.
func TestSweepExplainFlag(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"grid":{"coolings":["liquid"],"workloads":["web"],"policies":["LB","TDVFS_LB"],"steps":2,"grid":8}}`

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	plain := decode[map[string]any](t, resp, http.StatusOK)
	if _, ok := plain["plan"]; ok {
		t.Fatalf("plain sweep carries a plan block: %v", plain["plan"])
	}

	resp, err = http.Post(ts.URL+"/v1/sweeps?explain=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	explained := decode[map[string]any](t, resp, http.StatusOK)
	planBlock, ok := explained["plan"].(map[string]any)
	if !ok || planBlock["planned"] != true {
		t.Fatalf("explained sweep plan block: %v", explained["plan"])
	}
	groups, _ := planBlock["groups"].([]any)
	if len(groups) != 1 {
		t.Fatalf("plan groups: %v", planBlock["groups"])
	}
	g := groups[0].(map[string]any)
	if g["actual_ns"].(float64) <= 0 {
		t.Fatalf("explained group without measured cost: %v", g)
	}
	decision := g["decision"].(map[string]any)
	expl, ok := decision["explain"].(map[string]any)
	if !ok {
		t.Fatalf("decision without candidate table: %v", decision)
	}
	cands, _ := expl["candidates"].([]any)
	if len(cands) == 0 {
		t.Fatalf("empty candidate table: %v", expl)
	}
	chosen, feasible, advisory := 0, 0, 0
	for _, c := range cands {
		row := c.(map[string]any)
		if row["chosen"] == true {
			chosen++
		}
		if row["feasible"] == true {
			feasible++
		} else {
			advisory++
		}
		if row["est_ns"].(float64) <= 0 {
			t.Fatalf("candidate without estimate: %v", row)
		}
	}
	if chosen != 1 || feasible == 0 || advisory == 0 {
		t.Fatalf("candidate table: %d chosen, %d feasible, %d advisory", chosen, feasible, advisory)
	}
}

// TestStatsPlannerBlock: /v1/stats reports the planner's model source
// and group counters, and DisablePlanner removes both the block and
// the planning.
func TestStatsPlannerBlock(t *testing.T) {
	_, ts := newTestServer(t)
	runSweep(t, ts.URL)
	raw, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, raw, http.StatusOK)
	block, ok := stats["planner"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats without planner block: %v", stats["planner"])
	}
	got := map[string]bool{}
	jsonKeyPaths("", block, got)
	for _, path := range []string{
		"source", "calibrations", "groups_planned", "observed", "est_ns_total", "actual_ns_total",
	} {
		if !got[path] {
			t.Fatalf("planner block missing %q: %v", path, block)
		}
	}
	if block["groups_planned"].(float64) < 2 || block["observed"].(float64) < 2 {
		t.Fatalf("planner block did not see the sweep's groups: %v", block)
	}
	if src, _ := block["source"].(string); src == "" {
		t.Fatalf("planner block without model source: %v", block)
	}

	s2 := New(Options{Workers: 2, QueueDepth: 16, DisablePlanner: true})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	runSweep(t, ts2.URL)
	raw, err = http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats = decode[map[string]any](t, raw, http.StatusOK)
	if _, ok := stats["planner"]; ok {
		t.Fatal("planner block present with DisablePlanner")
	}
}

// TestQueryFieldCatalogMatchesRecords keeps FieldHelp, the query
// engine and the HTTP field validation in sync: every default field is
// documented and known.
func TestQueryFieldCatalogMatchesRecords(t *testing.T) {
	for _, f := range query.DefaultFields {
		if !knownField(f) {
			t.Fatalf("default field %q not in catalog", f)
		}
	}
}
