package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/jobs"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/sweep"
)

// The queryable results surface: every completed transient sweep is
// registered here under a content-addressed id, and /v1/results/query
// answers filter/sort/project expressions (internal/query) over the
// registered rows. Two tiers back the registry: a bounded in-memory
// ring of recent sweeps, and — when a durable store is attached — a
// manifest per sweep (identity rows: scenario, key, group) persisted
// beside the metrics the result cache already writes through. A
// restarted server re-reads manifests and re-joins each row to its
// stored metrics, so queries keep answering across restarts without
// recomputing anything.

// Store keys of the durable tier. Manifests live beside (not inside)
// the scenario-metrics namespace, so the cache's scenario keys and the
// registry's sweep ids can never collide.
const (
	sweepMetaPrefix = "sweepmeta/v1/"
	sweepIndexKey   = "sweepindex/v1"
)

// defaultMemSweeps bounds the in-memory ring.
const defaultMemSweeps = 32

// sweepManifest is the durable identity record of one sweep: every
// row's scenario, content key and grouping, without metrics (those are
// in the result store under the row's key).
type sweepManifest struct {
	ID   string        `json:"id"`
	Rows []manifestRow `json:"rows"`
}

type manifestRow struct {
	Index    int           `json:"index"`
	Key      string        `json:"key"`
	Group    string        `json:"group,omitempty"`
	CacheHit bool          `json:"cache_hit,omitempty"`
	Error    string        `json:"error,omitempty"`
	Scenario jobs.Scenario `json:"scenario"`
}

// resultsRegistry is the two-tier sweep registry.
type resultsRegistry struct {
	store  *store.Store
	maxMem int

	mu    sync.Mutex
	order []string // in-memory ids, oldest first
	mem   map[string][]query.Record
}

func newResultsRegistry(st *store.Store) *resultsRegistry {
	return &resultsRegistry{store: st, maxMem: defaultMemSweeps, mem: map[string][]query.Record{}}
}

// SweepID content-addresses a sweep: the hash of its ordered scenario
// keys. Re-running the same batch yields the same id, so restarts and
// repeats are idempotent in both tiers.
func SweepID(results []sweep.Result) string {
	h := sha256.New()
	for _, r := range results {
		h.Write([]byte(r.Key))
		h.Write([]byte{'\n'})
	}
	return "sw-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Register records one completed transient sweep in both tiers and
// returns its id. Store errors are returned after the in-memory tier
// is updated: the sweep is queryable either way, just not durable.
func (g *resultsRegistry) Register(rep *sweep.Report) (string, error) {
	id := SweepID(rep.Results)
	records := make([]query.Record, 0, len(rep.Results))
	for _, r := range rep.Results {
		records = append(records, query.FromResult(id, r))
	}

	g.mu.Lock()
	if _, seen := g.mem[id]; !seen {
		g.order = append(g.order, id)
		for len(g.order) > g.maxMem {
			delete(g.mem, g.order[0])
			g.order = g.order[1:]
		}
	}
	g.mem[id] = records
	var err error
	if g.store != nil {
		err = g.persistLocked(id, rep)
	}
	g.mu.Unlock()
	return id, err
}

// persistLocked writes the sweep's manifest and links it into the
// durable index (read-modify-write under the registry lock).
func (g *resultsRegistry) persistLocked(id string, rep *sweep.Report) error {
	man := sweepManifest{ID: id, Rows: make([]manifestRow, 0, len(rep.Results))}
	for _, r := range rep.Results {
		man.Rows = append(man.Rows, manifestRow{
			Index: r.Index, Key: r.Key, Group: r.Group,
			CacheHit: r.CacheHit, Error: r.Error, Scenario: r.Scenario,
		})
	}
	raw, err := json.Marshal(man)
	if err != nil {
		return err
	}
	if err := g.store.Put(sweepMetaPrefix+id, raw); err != nil {
		return err
	}
	ids, err := g.durableIDs()
	if err != nil {
		return err
	}
	for _, have := range ids {
		if have == id {
			return nil
		}
	}
	raw, err = json.Marshal(append(ids, id))
	if err != nil {
		return err
	}
	return g.store.Put(sweepIndexKey, raw)
}

// durableIDs reads the persisted sweep index (empty when absent).
func (g *resultsRegistry) durableIDs() ([]string, error) {
	if g.store == nil {
		return nil, nil
	}
	raw, ok, err := g.store.GetLocal(sweepIndexKey)
	if err != nil || !ok {
		return nil, err
	}
	var ids []string
	if err := json.Unmarshal(raw, &ids); err != nil {
		return nil, fmt.Errorf("results: corrupt sweep index: %w", err)
	}
	return ids, nil
}

// loadDurable rebuilds one sweep's records from its manifest and the
// stored metrics. Rows whose metrics are missing from the store keep
// their identity fields (queryable, metric filters exclude them).
func (g *resultsRegistry) loadDurable(id string) ([]query.Record, error) {
	raw, ok, err := g.store.GetLocal(sweepMetaPrefix + id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("results: unknown sweep %q", id)
	}
	var man sweepManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("results: corrupt manifest for %q: %w", id, err)
	}
	records := make([]query.Record, 0, len(man.Rows))
	for _, row := range man.Rows {
		res := sweep.Result{
			Index: row.Index, Key: row.Key, Group: row.Group,
			CacheHit: row.CacheHit, Error: row.Error, Scenario: row.Scenario,
		}
		if row.Error == "" {
			if val, ok, err := g.store.Get(row.Key); err == nil && ok {
				if m, err := jobs.DecodeMetrics(val); err == nil {
					res.Metrics = m
				}
			}
		}
		records = append(records, query.FromResult(id, res))
	}
	return records, nil
}

// SweepInfo describes one registered sweep for GET /v1/results.
type SweepInfo struct {
	ID        string `json:"id"`
	Scenarios int    `json:"scenarios"`
	// InMemory and Durable report which tiers hold the sweep.
	InMemory bool `json:"in_memory"`
	Durable  bool `json:"durable"`
}

// List enumerates both tiers, memory-resident sweeps first (newest
// last, matching registration order), then store-only ones.
func (g *resultsRegistry) List() ([]SweepInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []SweepInfo
	for _, id := range g.order {
		out = append(out, SweepInfo{ID: id, Scenarios: len(g.mem[id]), InMemory: true})
	}
	ids, err := g.durableIDs()
	if err != nil {
		return out, err
	}
	for _, id := range ids {
		if _, inMem := g.mem[id]; inMem {
			for i := range out {
				if out[i].ID == id {
					out[i].Durable = true
				}
			}
			continue
		}
		info := SweepInfo{ID: id, Durable: true}
		if raw, ok, err := g.store.GetLocal(sweepMetaPrefix + id); err == nil && ok {
			var man sweepManifest
			if json.Unmarshal(raw, &man) == nil {
				info.Scenarios = len(man.Rows)
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// Records gathers the queryable rows: one sweep when id is given, both
// tiers' union otherwise (memory wins for sweeps present in both).
func (g *resultsRegistry) Records(id string) ([]query.Record, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id != "" {
		if recs, ok := g.mem[id]; ok {
			return recs, nil
		}
		if g.store == nil {
			return nil, fmt.Errorf("results: unknown sweep %q", id)
		}
		return g.loadDurable(id)
	}
	var out []query.Record
	for _, memID := range g.order {
		out = append(out, g.mem[memID]...)
	}
	ids, err := g.durableIDs()
	if err != nil {
		return out, err
	}
	for _, durID := range ids {
		if _, inMem := g.mem[durID]; inMem {
			continue
		}
		recs, err := g.loadDurable(durID)
		if err != nil {
			return out, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// ResultsQueryRequest is the POST body of /v1/results/query. GET
// passes the same parameters as ?q=, ?format=, ?sweep=.
type ResultsQueryRequest struct {
	// Query is the filter/sort/project expression (see internal/query).
	Query string `json:"query"`
	// Format selects the output encoding: table (default), ndjson, json.
	Format string `json:"format,omitempty"`
	// Sweep restricts the query to one registered sweep id.
	Sweep string `json:"sweep,omitempty"`
}

func (s *Server) handleResultsList(w http.ResponseWriter, r *http.Request) {
	infos, err := s.results.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if infos == nil {
		infos = []SweepInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": infos})
}

func (s *Server) handleResultsQuery(w http.ResponseWriter, r *http.Request) {
	req := ResultsQueryRequest{
		Query:  r.URL.Query().Get("q"),
		Format: r.URL.Query().Get("format"),
		Sweep:  r.URL.Query().Get("sweep"),
	}
	if r.Method == http.MethodPost {
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w (fields: %s)", err, strings.Join(query.FieldNames(), ", ")))
		return
	}
	for _, f := range q.Fields {
		if !knownField(f) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("query: unknown field %q (have %s)", f, strings.Join(query.FieldNames(), ", ")))
			return
		}
	}
	formatter, err := query.NewFormatter(req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, err := s.results.Records(req.Sweep)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	rows = q.Run(rows)
	fields := q.Fields
	if len(fields) == 0 {
		fields = query.DefaultFields
	}
	switch formatter.Name() {
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
	case "json":
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	_ = formatter.Format(w, fields, rows)
}

var knownFields = func() map[string]bool {
	m := map[string]bool{}
	for _, f := range query.FieldNames() {
		m[f] = true
	}
	return m
}()

func knownField(f string) bool { return knownFields[f] }
