package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// TestStoreGetEndpoint pins the replica fetch protocol: url-safe base64
// key in the path, raw bytes out, 404 for absent keys, 400 for a
// malformed segment, 404 when no store is attached at all.
func TestStoreGetEndpoint(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	s := New(Options{Workers: 2, QueueDepth: 16, Store: st})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	key := string([]byte{'k', 0, '/', 0xff, 'z'}) // deliberately URL-hostile
	want := []byte("stored bytes \x00\x01")
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/store/" + store.EncodeKeyPath(key))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("stored key: status=%d body=%q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}

	if resp, err = http.Get(ts.URL + "/v1/store/" + store.EncodeKeyPath("absent")); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: status %d, want 404", resp.StatusCode)
	}

	if resp, err = http.Get(ts.URL + "/v1/store/!!not-base64!!"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad segment: status %d, want 400", resp.StatusCode)
	}

	// A storeless server has nothing to serve.
	s2, ts2 := newTestServer(t)
	_ = s2
	if resp, err = http.Get(ts2.URL + "/v1/store/" + store.EncodeKeyPath(key)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless server: status %d, want 404", resp.StatusCode)
	}
}

// TestServerPeerWarmFillOverHTTP is the fleet acceptance criterion: a
// second replica with an empty store directory, peered at the first
// over real HTTP, serves a previously computed sweep entirely from peer
// warm-fills — zero recomputation, byte-identical metrics, and the
// fills durably adopted. Killing the peer then degrades the replica to
// compute (no request errors), with the dead peer's trip/probe
// counters visible in /v1/stats.
func TestServerPeerWarmFillOverHTTP(t *testing.T) {
	// Replica A computes the sweep into its durable store.
	stA := openTestStore(t, t.TempDir())
	sA := New(Options{Workers: 2, QueueDepth: 16, Store: stA})
	tsA := httptest.NewServer(sA.Handler())
	repA := runSweep(t, tsA.URL)
	if repA.Errors != 0 || repA.Scenarios != 4 {
		t.Fatalf("seed sweep on A: %d scenarios, %d errors", repA.Scenarios, repA.Errors)
	}

	// Replica B: empty store directory, peered at A over real HTTP.
	peer := store.NewHTTPPeer([]string{tsA.URL}, store.HTTPPeerOptions{
		Timeout:    5 * time.Second,
		Backoff:    time.Millisecond,
		TripAfter:  2,
		ProbeAfter: time.Hour, // no half-open probes inside this test
	})
	stB, err := store.Open(store.Options{
		Dir: t.TempDir(), Shards: 2, PageSize: 512, PoolPages: 64, Peer: peer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	sB := New(Options{Workers: 2, QueueDepth: 16, Store: stB})
	tsB := httptest.NewServer(sB.Handler())
	defer func() { tsB.Close(); sB.Close() }()

	// The same sweep on B: 100% peer warm-fills, zero recomputation.
	repB := runSweep(t, tsB.URL)
	if repB.Errors != 0 || repB.Scenarios != 4 {
		t.Fatalf("warm-fill sweep on B: %d scenarios, %d errors", repB.Scenarios, repB.Errors)
	}
	if repB.CacheHits != repB.Scenarios {
		t.Fatalf("B recomputed: %d/%d cache hits", repB.CacheHits, repB.Scenarios)
	}
	statsB := getStatsResp(t, tsB.URL)
	if statsB.ScenariosComputed != 0 {
		t.Fatalf("B computed %d scenarios, want 0", statsB.ScenariosComputed)
	}
	if statsB.CacheStats.StoreHits != 4 {
		t.Fatalf("B store hits %d, want 4: %+v", statsB.CacheStats.StoreHits, statsB.CacheStats)
	}
	if statsB.Store == nil || statsB.Store.PeerFills != 4 || statsB.Store.PeerMisses != 0 || statsB.Store.PeerFillErrors != 0 {
		t.Fatalf("B peer counters: %+v", statsB.Store)
	}
	if len(statsB.Store.Peers) != 1 || statsB.Store.Peers[0].Hits != 4 || statsB.Store.Peers[0].Errors != 0 {
		t.Fatalf("B peer health: %+v", statsB.Store.Peers)
	}

	// Byte-identical through the exact-float-bits codec.
	byKey := map[string][]byte{}
	for _, r := range repA.Results {
		byKey[r.Key] = jobs.EncodeMetrics(r.Metrics)
	}
	for _, r := range repB.Results {
		want, ok := byKey[r.Key]
		if !ok {
			t.Fatalf("B produced unknown key %s", r.Key)
		}
		if !bytes.Equal(jobs.EncodeMetrics(r.Metrics), want) {
			t.Fatalf("scenario %s not byte-identical across the fleet", r.Key)
		}
	}

	// Kill A. The warm-fills were durably adopted, so B still serves the
	// sweep — and a sweep A never computed degrades to local compute
	// without a single request error, tripping A's breaker.
	tsA.Close()
	sA.Close()
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}
	repB2 := runSweep(t, tsB.URL)
	if repB2.Errors != 0 || repB2.CacheHits != repB2.Scenarios {
		t.Fatalf("B no longer serves the adopted sweep: %+v", repB2)
	}

	fresh := `{"grid":{"coolings":["air","liquid"],"workloads":["web","db"],"policies":["LB"],"steps":3,"grid":8}}`
	resp, err := http.Post(tsB.URL+"/v1/sweeps", "application/json",
		bytes.NewReader([]byte(fresh)))
	if err != nil {
		t.Fatal(err)
	}
	repB3 := decode[sweep.Report](t, resp, http.StatusOK)
	if repB3.Errors != 0 || repB3.Scenarios != 4 {
		t.Fatalf("degraded sweep on B: %d scenarios, %d errors", repB3.Scenarios, repB3.Errors)
	}
	if repB3.CacheHits != 0 {
		t.Fatalf("degraded sweep claims %d cache hits from a dead fleet", repB3.CacheHits)
	}
	statsB = getStatsResp(t, tsB.URL)
	if statsB.ScenariosComputed != 4 {
		t.Fatalf("B computed %d scenarios after degradation, want 4", statsB.ScenariosComputed)
	}
	if statsB.Store.PeerMisses != 4 {
		t.Fatalf("degraded lookups not counted as peer misses: %+v", statsB.Store)
	}
	ph := statsB.Store.Peers[0]
	if ph.Errors == 0 || ph.Trips != 1 || !ph.Tripped {
		t.Fatalf("dead peer's breaker state not surfaced: %+v", ph)
	}
	if ph.ConsecutiveFailures < 2 {
		t.Fatalf("consecutive failures %d, want >= 2", ph.ConsecutiveFailures)
	}
}
