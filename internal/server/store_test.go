package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/sweep"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Shards: 2, PageSize: 512, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runSweep(t *testing.T, url string) sweep.Report {
	t.Helper()
	body := `{"grid":{"coolings":["air","liquid"],"workloads":["web","db"],"policies":["LB"],"steps":2,"grid":8}}`
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return decode[sweep.Report](t, resp, http.StatusOK)
}

func getStatsResp(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decode[StatsResponse](t, resp, http.StatusOK)
}

// TestServerRestartServesFromStore is the PR's acceptance criterion: a
// populated cache survives a restart. Run a sweep against a
// store-backed server, tear everything down, bring up a fresh server on
// the same store directory, and re-run the identical sweep — every
// scenario must be a store-served cache hit, nothing recomputed, and
// the metrics byte-identical (exact float bits, checked through the
// binary codec).
func TestServerRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()

	st1 := openTestStore(t, dir)
	s1 := New(Options{Workers: 2, QueueDepth: 16, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())
	rep1 := runSweep(t, ts1.URL)
	if rep1.Errors != 0 || rep1.Scenarios != 4 {
		t.Fatalf("seed sweep: %d scenarios, %d errors", rep1.Scenarios, rep1.Errors)
	}
	stats1 := getStatsResp(t, ts1.URL)
	// 4 scenario results + the results registry's sweep manifest and
	// sweep index.
	if stats1.Store == nil || stats1.Store.Entries != 6 {
		t.Fatalf("store block after seed sweep: %+v", stats1.Store)
	}
	if stats1.CacheStats.StorePuts != 4 {
		t.Fatalf("write-throughs %d, want 4", stats1.CacheStats.StorePuts)
	}
	ts1.Close()
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh process state, same store directory.
	st2 := openTestStore(t, dir)
	defer st2.Close()
	if st2.Len() != 6 {
		t.Fatalf("store lost entries across restart: %d", st2.Len())
	}
	s2 := New(Options{Workers: 2, QueueDepth: 16, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	rep2 := runSweep(t, ts2.URL)
	if rep2.Errors != 0 {
		t.Fatalf("re-run errors: %d", rep2.Errors)
	}
	if rep2.CacheHits != rep2.Scenarios {
		t.Fatalf("re-run: %d/%d store hits, want all", rep2.CacheHits, rep2.Scenarios)
	}
	for _, r := range rep2.Results {
		if !r.CacheHit {
			t.Fatalf("scenario %s recomputed after restart", r.Key)
		}
	}
	stats2 := getStatsResp(t, ts2.URL)
	if stats2.ScenariosComputed != 0 {
		t.Fatalf("restarted server recomputed %d scenarios", stats2.ScenariosComputed)
	}
	if stats2.CacheStats.StoreHits != 4 {
		t.Fatalf("store hits %d, want 4: %+v", stats2.CacheStats.StoreHits, stats2.CacheStats)
	}

	// Byte-identical results: the binary codec preserves exact IEEE-754
	// bits, so the encodings must match, not just the JSON renderings.
	byKey := map[string][]byte{}
	for _, r := range rep1.Results {
		byKey[r.Key] = jobs.EncodeMetrics(r.Metrics)
	}
	for _, r := range rep2.Results {
		want, ok := byKey[r.Key]
		if !ok {
			t.Fatalf("re-run produced unknown key %s", r.Key)
		}
		if !bytes.Equal(jobs.EncodeMetrics(r.Metrics), want) {
			t.Fatalf("scenario %s not byte-identical across restart", r.Key)
		}
	}
}

// TestSimulateStoreHitFlaggedCached: a store-served result reports
// "cached": true on the wire, same as a memory hit.
func TestSimulateStoreHitFlaggedCached(t *testing.T) {
	dir := t.TempDir()
	st1 := openTestStore(t, dir)
	s1 := New(Options{Workers: 2, QueueDepth: 16, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())
	resp, err := http.Post(ts1.URL+"/v1/simulate", "application/json", quickBody(t))
	if err != nil {
		t.Fatal(err)
	}
	first := decode[SimulateResponse](t, resp, http.StatusOK)
	if first.Cached {
		t.Fatal("first request cached")
	}
	ts1.Close()
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2 := New(Options{Workers: 2, QueueDepth: 16, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	resp, err = http.Post(ts2.URL+"/v1/simulate", "application/json", quickBody(t))
	if err != nil {
		t.Fatal(err)
	}
	second := decode[SimulateResponse](t, resp, http.StatusOK)
	if !second.Cached {
		t.Fatal("store-served result not flagged cached")
	}
	if !reflect.DeepEqual(second.Metrics, first.Metrics) {
		t.Fatal("store-served metrics differ")
	}
}

// jsonKeyPaths flattens a decoded JSON value into sorted dotted key
// paths ("wal.fsyncs", "shards.#.pool.hits"), with array elements
// collapsed — a structural fingerprint that pins the wire shape without
// pinning values.
func jsonKeyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			jsonKeyPaths(p, child, out)
		}
	case []any:
		for _, child := range x {
			jsonKeyPaths(prefix+".#", child, out)
		}
	}
}

// TestStatsStoreShape pins the /v1/stats store block's wire shape with
// a golden key-path assertion, so accidental renames or dropped
// counters fail loudly.
func TestStatsStoreShape(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	s := New(Options{Workers: 2, QueueDepth: 16, Store: st})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// One computed scenario so every counter surface is live.
	if resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", quickBody(t)); err != nil {
		t.Fatal(err)
	} else {
		decode[SimulateResponse](t, resp, http.StatusOK)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw := decode[map[string]any](t, resp, http.StatusOK)
	storeBlock, ok := raw["store"]
	if !ok {
		t.Fatal("/v1/stats has no store block with a store attached")
	}
	got := map[string]bool{}
	jsonKeyPaths("", storeBlock, got)
	var paths []string
	for p := range got {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	golden := []string{
		"compactions",
		"dead_bytes",
		"deletes",
		"disk_bytes",
		"entries",
		"gets",
		"hits",
		"live_bytes",
		"peer_fill_errors",
		"peer_fills",
		"peer_misses",
		"pool",
		"pool.capacity",
		"pool.evictions",
		"pool.hits",
		"pool.misses",
		"pool.pages",
		"pool.writebacks",
		"puts",
		"shards",
		"shards.#.compactions",
		"shards.#.dead_bytes",
		"shards.#.deletes",
		"shards.#.disk_bytes",
		"shards.#.entries",
		"shards.#.gets",
		"shards.#.hits",
		"shards.#.live_bytes",
		"shards.#.pool",
		"shards.#.pool.capacity",
		"shards.#.pool.evictions",
		"shards.#.pool.hits",
		"shards.#.pool.misses",
		"shards.#.pool.pages",
		"shards.#.pool.writebacks",
		"shards.#.puts",
		"shards.#.reclaimed_bytes",
		"shards.#.segments",
		"shards.#.wal",
		"shards.#.wal.appended_bytes",
		"shards.#.wal.appends",
		"shards.#.wal.fsyncs",
		"shards.#.wal.replay_records",
		"shards.#.wal.rotations",
		"shards.#.wal.segments",
		"shards.#.wal.syncs",
		"shards.#.wal.truncated_bytes",
		"wal",
		"wal.appended_bytes",
		"wal.appends",
		"wal.fsyncs",
		"wal.replay_records",
		"wal.rotations",
		"wal.segments",
		"wal.syncs",
		"wal.truncated_bytes",
		"wedged_shards",
	}
	if !reflect.DeepEqual(paths, golden) {
		gotJSON, _ := json.MarshalIndent(paths, "", "  ")
		t.Fatalf("store stats shape drifted from golden:\n%s", gotJSON)
	}

	// Without a store, the block is absent entirely.
	s2, ts2 := newTestServer(t)
	_ = s2
	resp, err = http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw = decode[map[string]any](t, resp, http.StatusOK)
	if _, ok := raw["store"]; ok {
		t.Fatal("store block present without a store attached")
	}

	// And the cache_stats block carries the store counters.
	for _, key := range []string{"store_misses", "store_puts"} {
		stats := getStatsResp(t, ts.URL)
		b, _ := json.Marshal(stats.CacheStats)
		if !strings.Contains(string(b), fmt.Sprintf("%q", key)) {
			t.Fatalf("cache_stats missing %s: %s", key, b)
		}
	}
}
