package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/sweep"
)

// chaosIterations is the seeded-iteration budget: the CI chaos job runs
// the full count under -race; -short keeps ordinary test runs quick.
func chaosIterations(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 200
}

// chaosRule builds one deterministic rule for a point. Guaranteed rules
// (the per-iteration coverage target) always fire a bounded number of
// times; background rules fire probabilistically. jobs.compute only
// ever gets latency — an injected compute *error* is a legitimate
// client-visible failure, and the chaos contract under test is that
// store/peer/transport faults are never client-visible.
func chaosRule(point string, rng *rand.Rand, guaranteed bool) fault.Rule {
	r := fault.Rule{Point: point}
	if guaranteed {
		r.Times = 1 + rng.Intn(3)
	} else {
		r.Prob = 0.2 + 0.3*rng.Float64()
	}
	switch point {
	case "jobs.compute":
		r.Mode = fault.ModeLatency
		r.Delay = time.Duration(1+rng.Intn(2)) * time.Millisecond
	case "store.wal.write", "store.page.writeback":
		if rng.Intn(2) == 0 {
			r.Mode = fault.ModeTorn
		} else {
			r.Mode = fault.ModeError
		}
	case "store.peer.fetch":
		if rng.Intn(2) == 0 {
			r.Mode = fault.ModeLatency
			r.Delay = time.Millisecond
		} else {
			r.Mode = fault.ModeError
		}
	default:
		r.Mode = fault.ModeError
	}
	return r
}

// TestChaosConcurrentSweepsUnderFaults is the chaos suite: many seeded
// iterations of concurrent sweeps with faults firing at every
// registered point, asserting (a) the store never reopens corrupted,
// (b) results are byte-identical to a fault-free run, (c) store and
// peer faults degrade to compute — zero client-visible request errors —
// and (d) nothing leaks goroutines.
func TestChaosConcurrentSweepsUnderFaults(t *testing.T) {
	iterations := chaosIterations(t)
	points := fault.Points()
	if len(points) == 0 {
		t.Fatal("no fault points registered")
	}
	baseGoroutines := runtime.NumGoroutine()

	// Fault-free oracle: same engine path, no store, no faults. Its
	// in-memory cache re-serves identical clones across iterations.
	oracle := New(Options{Workers: 2})
	oracleTS := httptest.NewServer(oracle.Handler())
	defer func() { oracleTS.Close(); oracle.Close() }()

	// The replica peer the store warm-fills from: always a definitive
	// miss, so every store miss exercises store.peer.fetch then computes.
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not found", http.StatusNotFound)
	}))
	defer peerSrv.Close()

	dir := t.TempDir()
	baseline := map[string]string{} // scenario key → canonical metrics JSON
	coverage := map[string]uint64{} // point → cumulative injected firings

	postSweep := func(url string, g sweep.Grid) (*sweep.Report, int, error) {
		body, err := json.Marshal(SweepRequest{Grid: &g})
		if err != nil {
			return nil, 0, err
		}
		resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e errorJSON
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return nil, resp.StatusCode, fmt.Errorf("%s", e.Error)
		}
		var rep sweep.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			return nil, resp.StatusCode, err
		}
		return &rep, resp.StatusCode, nil
	}
	metricsJSON := func(t *testing.T, r sweep.Result) string {
		t.Helper()
		b, err := json.Marshal(r.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)*7919 + 17))
		target := points[iter%len(points)]

		// Three small concurrent sweep shapes; C's seed is novel every
		// iteration so the store always has a miss (peer fetch + fresh
		// write-through), while A and B revisit persisted keys.
		shapes := []sweep.Grid{
			{Coolings: []string{"air"}, Workloads: []string{"web"},
				Seeds: []int64{1, 2}, Steps: 2, Res: 8},
			{Coolings: []string{"air", "liquid"}, Workloads: []string{"web"},
				Seeds: []int64{3}, Steps: 2, Res: 8},
			{Coolings: []string{"air"}, Workloads: []string{"db"},
				Seeds: []int64{int64(1000 + iter)}, Steps: 2, Res: 8},
		}

		// Fill the oracle baseline fault-free before enabling injection.
		for _, g := range shapes {
			rep, status, err := postSweep(oracleTS.URL, g)
			if err != nil || status != http.StatusOK {
				t.Fatalf("iter %d: oracle sweep: status=%d err=%v", iter, status, err)
			}
			for _, r := range rep.Results {
				if r.Error != "" || r.Metrics == nil {
					t.Fatalf("iter %d: oracle result error: %s", iter, r.Error)
				}
				baseline[r.Key] = metricsJSON(t, r)
			}
		}

		// Reopen the store fault-free: a prior iteration may have wedged
		// it and skipped its checkpoint — reopening must replay cleanly.
		st, err := store.Open(store.Options{
			Dir: dir, Shards: 2, PoolPages: 16, PageSize: 512,
			SegmentBytes: 8 << 10, WALSegmentBytes: 8 << 10,
			Peer: store.NewHTTPPeer([]string{peerSrv.URL}, store.HTTPPeerOptions{
				Timeout: 500 * time.Millisecond, Attempts: 1, Backoff: time.Millisecond,
			}),
		})
		if err != nil {
			t.Fatalf("iter %d: corrupted reopen: %v", iter, err)
		}
		if !st.Healthy() {
			t.Fatalf("iter %d: store reopened unhealthy", iter)
		}
		svc := New(Options{Workers: 2, Store: st})
		ts := httptest.NewServer(svc.Handler())

		// Compile this iteration's deterministic fault registry: the
		// round-robin target point always fires, others probabilistically.
		// When the target sits downstream in the store's durability
		// pipeline (writeback, segment fsync, ...), upstream store rules
		// would wedge the shard before the target is ever evaluated — so
		// those iterations keep only non-interfering background rules.
		rules := []fault.Rule{chaosRule(target, rng, true)}
		storeTarget := target != "jobs.compute" && target != "store.peer.fetch"
		for _, p := range points {
			if p == target {
				continue
			}
			if storeTarget && p != "jobs.compute" && p != "store.peer.fetch" {
				continue
			}
			if rng.Float64() < 0.35 {
				rules = append(rules, chaosRule(p, rng, false))
			}
		}
		reg := fault.New(int64(iter)+1, rules...)
		fault.Enable(reg)

		var wg sync.WaitGroup
		for si, g := range shapes {
			wg.Add(1)
			go func(si int, g sweep.Grid) {
				defer wg.Done()
				rep, status, err := postSweep(ts.URL, g)
				if err != nil || status != http.StatusOK {
					t.Errorf("iter %d shape %d: status=%d err=%v (store/peer faults must not be client-visible)",
						iter, si, status, err)
					return
				}
				if rep.Errors != 0 {
					t.Errorf("iter %d shape %d: %d result errors under faults", iter, si, rep.Errors)
				}
				for _, r := range rep.Results {
					want, ok := baseline[r.Key]
					if !ok {
						t.Errorf("iter %d shape %d: no baseline for %s", iter, si, r.Key)
						continue
					}
					if got := metricsJSON(t, r); got != want {
						t.Errorf("iter %d shape %d key %s: metrics diverge from fault-free baseline\n got %s\nwant %s",
							iter, si, r.Key, got, want)
					}
				}
			}(si, g)
		}
		wg.Wait()

		// Checkpoint-path and compaction points are only evaluated when
		// those operations actually run; drive them explicitly on their
		// coverage iterations (the injected failure is the expected
		// outcome — it wedges the shard, proven safe by the next reopen).
		switch target {
		case "store.compact":
			_ = st.Compact()
		case "store.page.writeback", "store.seg.fsync":
			_ = st.Flush()
		}

		// Tear down with faults still enabled — close paths (final
		// checkpoint, segment fsync) take injection too. Wedged shards
		// skip their checkpoint; the next iteration's reopen proves the
		// on-disk state stayed sound either way.
		ts.Close()
		svc.Close()
		_ = st.Close()
		fault.Disable()

		for _, p := range points {
			coverage[p] += reg.Hits(p)
		}
		if t.Failed() {
			t.FailNow()
		}
	}

	// Every registered point took at least one injected fault across the
	// suite.
	for _, p := range points {
		if coverage[p] == 0 {
			t.Errorf("fault point %s never fired across %d iterations", p, iterations)
		}
	}

	// Final fault-free reopen: the store is intact and serves.
	st, err := store.Open(store.Options{Dir: dir, Shards: 2, PoolPages: 16,
		PageSize: 512, SegmentBytes: 8 << 10, WALSegmentBytes: 8 << 10})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if !st.Healthy() {
		t.Fatal("final reopen unhealthy")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}

	// No stuck goroutines: allow the runtime a moment to reap HTTP
	// keep-alives and worker teardown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseGoroutines+10 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
