// Package cooling models the liquid-injection infrastructure around the
// stack: the pump network that drives the inter-tier cavities and its
// flow-rate → electrical-power calibration from Table I of the paper
// (10–32.3 ml/min per cavity ↔ 3.5–11.176 W of pumping-network power for
// the 2-cavity stack).
package cooling

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Pump is the pumping network feeding every cavity of one stack. Power
// interpolates linearly in total flow between the calibrated endpoints —
// the Table-I figures are almost exactly linear (11.176/3.5 ≈ 32.3/10).
type Pump struct {
	// Cavities is the number of cavities fed (2 or 4 in the paper).
	Cavities int
	// MinFlow and MaxFlow bound the per-cavity flow (m³/s).
	MinFlow, MaxFlow float64
	// MinPowerPerCavity and MaxPowerPerCavity are the network power per
	// cavity at MinFlow and MaxFlow (W).
	MinPowerPerCavity, MaxPowerPerCavity float64
}

// TableIPump returns the paper's pump for the given cavity count.
// Per-cavity flow spans 10–32.3 ml/min; network power spans
// 3.5–11.176 W for the 2-cavity (2-tier) stack and scales with the
// cavity count.
func TableIPump(cavities int) (*Pump, error) {
	if cavities < 1 {
		return nil, errors.New("cooling: need at least one cavity")
	}
	return &Pump{
		Cavities:          cavities,
		MinFlow:           units.MlPerMinToM3PerS(10),
		MaxFlow:           units.MlPerMinToM3PerS(32.3),
		MinPowerPerCavity: 3.5 / 2,
		MaxPowerPerCavity: 11.176 / 2,
	}, nil
}

// ClampFlow limits a requested per-cavity flow to the pump's range.
func (p *Pump) ClampFlow(q float64) float64 {
	return units.Clamp(q, p.MinFlow, p.MaxFlow)
}

// Power returns the pumping-network electrical power (W) at per-cavity
// flow q (clamped to range).
func (p *Pump) Power(q float64) float64 {
	q = p.ClampFlow(q)
	t := units.InvLerp(p.MinFlow, p.MaxFlow, q)
	return float64(p.Cavities) * units.Lerp(p.MinPowerPerCavity, p.MaxPowerPerCavity, t)
}

// FlowLevels quantises the flow range into n evenly spaced settings
// (level 0 = minimum flow, level n-1 = maximum) — the discrete actuation
// the fuzzy controller drives.
func (p *Pump) FlowLevels(n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("cooling: need >= 2 flow levels, got %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = units.Lerp(p.MinFlow, p.MaxFlow, float64(i)/float64(n-1))
	}
	return out, nil
}

// MaxPower returns the network power at full flow — the figure the
// paper's worst-case baseline (LC_LB) pays continuously.
func (p *Pump) MaxPower() float64 { return p.Power(p.MaxFlow) }

// MinPower returns the network power at minimum flow.
func (p *Pump) MinPower() float64 { return p.Power(p.MinFlow) }

// PowerPerCavity returns the electrical power (W) one cavity's share of
// the network draws at per-cavity flow q — the accounting used when the
// controller sets each cavity's flow individually (§I: "tune the flow
// rate of the coolant in each micro-channel").
func (p *Pump) PowerPerCavity(q float64) float64 {
	q = p.ClampFlow(q)
	t := units.InvLerp(p.MinFlow, p.MaxFlow, q)
	return units.Lerp(p.MinPowerPerCavity, p.MaxPowerPerCavity, t)
}

// PowerSplit returns the total network power for per-cavity flows qs;
// len(qs) must equal Cavities.
func (p *Pump) PowerSplit(qs []float64) (float64, error) {
	if len(qs) != p.Cavities {
		return 0, fmt.Errorf("cooling: %d flows for %d cavities", len(qs), p.Cavities)
	}
	total := 0.0
	for _, q := range qs {
		total += p.PowerPerCavity(q)
	}
	return total, nil
}
