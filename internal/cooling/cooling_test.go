package cooling

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestTableIPumpEndpoints(t *testing.T) {
	// Table I: flow 10-32.3 ml/min per cavity; pumping network power
	// 3.5-11.176 W (2-cavity stack).
	p, err := TableIPump(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Power(units.MlPerMinToM3PerS(10)); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("min-flow power = %v, want 3.5", got)
	}
	if got := p.Power(units.MlPerMinToM3PerS(32.3)); math.Abs(got-11.176) > 1e-9 {
		t.Errorf("max-flow power = %v, want 11.176", got)
	}
	if got := p.MaxPower(); math.Abs(got-11.176) > 1e-9 {
		t.Errorf("MaxPower = %v", got)
	}
	if got := p.MinPower(); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("MinPower = %v", got)
	}
}

func TestPumpScalesWithCavities(t *testing.T) {
	p2, _ := TableIPump(2)
	p4, _ := TableIPump(4)
	q := units.MlPerMinToM3PerS(20)
	if math.Abs(p4.Power(q)-2*p2.Power(q)) > 1e-9 {
		t.Errorf("4-cavity pump %v != 2x 2-cavity %v", p4.Power(q), p2.Power(q))
	}
}

func TestPumpClampsFlow(t *testing.T) {
	p, _ := TableIPump(2)
	lo := p.Power(0)
	if math.Abs(lo-3.5) > 1e-9 {
		t.Errorf("below-range flow should clamp to min power, got %v", lo)
	}
	hi := p.Power(1)
	if math.Abs(hi-11.176) > 1e-9 {
		t.Errorf("above-range flow should clamp to max power, got %v", hi)
	}
	if q := p.ClampFlow(0); q != p.MinFlow {
		t.Errorf("ClampFlow(0) = %v", q)
	}
}

func TestPumpMonotone(t *testing.T) {
	p, _ := TableIPump(2)
	prev := 0.0
	for ml := 10.0; ml <= 32.3; ml += 2 {
		w := p.Power(units.MlPerMinToM3PerS(ml))
		if w <= prev {
			t.Fatalf("pump power not increasing at %v ml/min", ml)
		}
		prev = w
	}
}

func TestFlowLevels(t *testing.T) {
	p, _ := TableIPump(2)
	ls, err := p.FlowLevels(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 5 {
		t.Fatalf("levels = %d", len(ls))
	}
	if ls[0] != p.MinFlow || ls[4] != p.MaxFlow {
		t.Errorf("levels must span the range: %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatal("levels not increasing")
		}
	}
	if _, err := p.FlowLevels(1); err == nil {
		t.Error("n < 2 must fail")
	}
}

func TestTableIPumpValidation(t *testing.T) {
	if _, err := TableIPump(0); err == nil {
		t.Error("zero cavities must fail")
	}
}

func TestCoolingEnergySavingHeadroom(t *testing.T) {
	// The claim "up to 67% reduction in cooling energy" requires the
	// pump's min/max power ratio to leave at least that headroom:
	// 1 - 3.5/11.176 = 0.687.
	p, _ := TableIPump(2)
	saving := 1 - p.MinPower()/p.MaxPower()
	if saving < 0.67 {
		t.Errorf("max possible cooling saving = %v, paper reports up to 0.67", saving)
	}
}

func TestPowerPerCavityConsistent(t *testing.T) {
	p, err := TableIPump(4)
	if err != nil {
		t.Fatal(err)
	}
	// Equal per-cavity flows must reproduce the aggregate Power figure.
	q := units.MlPerMinToM3PerS(20)
	split, err := p.PowerSplit([]float64{q, q, q, q})
	if err != nil {
		t.Fatal(err)
	}
	if diff := split - p.Power(q); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("split %.6f != aggregate %.6f", split, p.Power(q))
	}
	if _, err := p.PowerSplit([]float64{q}); err == nil {
		t.Fatal("wrong flow count accepted")
	}
}

func TestPowerSplitUnequalCheaper(t *testing.T) {
	p, err := TableIPump(2)
	if err != nil {
		t.Fatal(err)
	}
	hi := p.MaxFlow
	lo := p.MinFlow
	unequal, err := p.PowerSplit([]float64{hi, lo})
	if err != nil {
		t.Fatal(err)
	}
	if both := p.Power(hi); unequal >= both {
		t.Fatalf("throttling one cavity (%.3f W) should undercut max-flow (%.3f W)", unequal, both)
	}
}
