package dse

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/jobs"
	"repro/internal/tsv"
	"repro/internal/units"
)

func exploreTestSpace(t *testing.T) *Space {
	t.Helper()
	duty := Duty{
		TierPower:       60,
		FootprintW:      11.5e-3,
		FootprintH:      10e-3,
		DieThickness:    0.15e-3,
		DieConductivity: 130,
		InletC:          27,
	}
	arr := tsv.Array{
		Via:   tsv.Via{Diameter: 40e-6, Depth: 380e-6, Liner: 200e-9},
		Pitch: 0.15e-3,
		KOZ:   10e-6,
	}
	sp, err := DefaultSpace(duty, arr,
		units.MlPerMinToM3PerS(10), units.MlPerMinToM3PerS(32.3), 8)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestExploreParallelMatchesSequential is the acceptance check for the
// jobs.Pool rewiring: the concurrent sweep must reproduce the
// sequential sweep exactly — same evaluations, same order.
func TestExploreParallelMatchesSequential(t *testing.T) {
	sp := exploreTestSpace(t)
	want, err := sp.exploreSequential()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 0} {
		got, err := sp.ExploreParallel(context.Background(), jobs.NewPool(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel sweep diverges from sequential", workers)
		}
	}
	// The public entry point routes through the pool.
	got, err := sp.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Explore() diverges from sequential sweep")
	}
}

func TestExploreParallelCancellation(t *testing.T) {
	sp := exploreTestSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sp.ExploreParallel(ctx, nil); err == nil {
		t.Fatal("canceled exploration succeeded")
	}
}
