package dse

import (
	"errors"
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/fluids"
	"repro/internal/thermal"
)

// Validation compares the 1-D explorer estimate of a winning channel
// design against the full compact 3D model on a uniform-power tier —
// the co-design loop's "check with the real model" step.
type Validation struct {
	Estimate Evaluation
	// ModelJunctionC is the full-model peak junction temperature (°C).
	ModelJunctionC float64
	// ErrorK is estimate − model (K); the 1-D estimator is designed to
	// be conservative (it stacks worst-case drops), so positive errors
	// are expected.
	ErrorK float64
}

// Validate rebuilds a channel design point as a single-tier stack in the
// compact 3D model under a uniform power map matching the duty, solves
// the steady state, and reports the discrepancy.
func Validate(ev Evaluation, d Duty, grid int) (*Validation, error) {
	ch, ok := ev.Geometry.(ChannelGeometry)
	if !ok {
		return nil, errors.New("dse: only channel designs validate against the compact model")
	}
	if grid < 4 {
		grid = 16
	}
	d = d.withDefaults()
	tier := floorplan.UniformTestTier("dse", d.FootprintW, d.FootprintH)
	r, err := tier.FP.Rasterize(grid, grid)
	if err != nil {
		return nil, err
	}
	cells, err := r.SpreadPower([]float64{d.TierPower})
	if err != nil {
		return nil, err
	}
	cav := &thermal.CavitySpec{
		Arr:      ch.Arr,
		Fluid:    fluids.Water(),
		FlowRate: ev.FlowM3s,
		InletC:   d.InletC,
		WallMat:  thermal.InterTier,
	}
	m, err := thermal.New(thermal.Config{
		Nx: grid, Ny: grid,
		W: d.FootprintW, H: d.FootprintH,
		Layers: []thermal.LayerSpec{
			{Name: "cavity", Thickness: ch.Arr.Ch.H, Cavity: cav},
			{Name: "si", Thickness: d.DieThickness, Mat: thermal.Silicon, Power: true},
			{Name: "wiring", Thickness: thermal.WiringThickness, Mat: thermal.Wiring},
		},
		AmbientC: d.InletC,
	})
	if err != nil {
		return nil, fmt.Errorf("dse: building validation model: %w", err)
	}
	f, err := m.SteadyState(thermal.PowerMap{cells}, nil)
	if err != nil {
		return nil, err
	}
	v := &Validation{Estimate: ev, ModelJunctionC: f.MaxOverPowerLayers()}
	v.ErrorK = ev.JunctionC - v.ModelJunctionC
	return v, nil
}
