package dse

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/fluids"
	"repro/internal/jobs"
	"repro/internal/microchannel"
	"repro/internal/sweep"
	"repro/internal/tsv"
)

// Space is a candidate design space: geometries × flow rates, with one
// coolant and one duty.
type Space struct {
	Geometries []Geometry
	// Flows are the cavity flow rates to sweep (m³/s).
	Flows []float64
	Fluid fluids.Fluid
	Duty  Duty
}

// DefaultSpace builds the §II-C exploration space for a duty: channel
// widths from 30 µm up to the TSV-imposed maximum at the Table-I pitch,
// and circular pin fins in both arrangements, swept over n flow levels
// between qMin and qMax.
func DefaultSpace(d Duty, arr tsv.Array, qMin, qMax float64, nFlows int) (*Space, error) {
	if nFlows < 2 {
		return nil, errors.New("dse: need at least 2 flow levels")
	}
	if qMin <= 0 || qMax <= qMin {
		return nil, errors.New("dse: invalid flow range")
	}
	if err := arr.Validate(); err != nil {
		return nil, err
	}
	wMax := arr.MaxChannelWidth()
	if wMax <= 30e-6 {
		return nil, fmt.Errorf("dse: TSV array leaves only %.0f µm for channels", wMax*1e6)
	}
	const pitch = 0.15e-3 // Table I
	const height = 0.1e-3 // cavity height, Table I
	var geoms []Geometry
	for _, w := range []float64{30e-6, 50e-6, 75e-6, 100e-6} {
		if w > wMax || w >= pitch {
			continue
		}
		a, err := microchannel.NewArray(
			microchannel.Channel{W: w, H: height, L: d.FootprintW}, pitch, d.FootprintH)
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, ChannelGeometry{Arr: a})
	}
	for _, arrangement := range []microchannel.PinArrangement{
		microchannel.InLine, microchannel.Staggered,
	} {
		geoms = append(geoms, PinFinGeometry{Arr: microchannel.PinFinArray{
			Shape:       microchannel.Circular,
			Arrangement: arrangement,
			D:           50e-6,
			Sl:          pitch, St: pitch,
			H:      height,
			Along:  d.FootprintW,
			Across: d.FootprintH,
		}})
	}
	flows := make([]float64, nFlows)
	for i := range flows {
		flows[i] = qMin + (qMax-qMin)*float64(i)/float64(nFlows-1)
	}
	return &Space{Geometries: geoms, Flows: flows, Fluid: fluids.Water(), Duty: d}, nil
}

// Explore evaluates the full factorial sweep, fanning the independent
// design points across the machine's cores (jobs.Pool). Design points
// whose evaluation fails (unbuildable geometry) are skipped only if
// other points succeed; a space in which nothing evaluates is an error.
// The result ordering and error selection are identical to the
// sequential sweep regardless of worker scheduling.
func (s *Space) Explore() ([]Evaluation, error) {
	return s.ExploreParallel(context.Background(), nil)
}

// ExploreParallel is Explore on a caller-supplied pool (nil selects a
// GOMAXPROCS-wide default) with cancellation: design points not yet
// started when ctx is canceled are skipped and ctx's error returned.
// The fan-out runs through the batched sweep engine's primitive
// (sweep.FanOut), the same execution path the scenario sweeps use.
func (s *Space) ExploreParallel(ctx context.Context, pool *jobs.Pool) ([]Evaluation, error) {
	if len(s.Geometries) == 0 || len(s.Flows) == 0 {
		return nil, errors.New("dse: empty design space")
	}
	nf := len(s.Flows)
	n := len(s.Geometries) * nf
	evals, errs, err := sweep.FanOut(ctx, pool, n, func(_ context.Context, i int) (Evaluation, error) {
		return Evaluate(s.Geometries[i/nf], s.Fluid, s.Flows[i%nf], s.Duty)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Evaluation, 0, n)
	var firstErr error
	for i, e := range errs {
		if e != nil {
			if firstErr == nil {
				firstErr = e
			}
			continue
		}
		out = append(out, evals[i])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dse: no design point evaluated: %w", firstErr)
	}
	return out, nil
}

// exploreSequential is the single-threaded reference sweep, kept as the
// ground truth the parallel path is tested against.
func (s *Space) exploreSequential() ([]Evaluation, error) {
	if len(s.Geometries) == 0 || len(s.Flows) == 0 {
		return nil, errors.New("dse: empty design space")
	}
	var out []Evaluation
	var firstErr error
	for _, g := range s.Geometries {
		for _, q := range s.Flows {
			ev, err := Evaluate(g, s.Fluid, q, s.Duty)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out = append(out, ev)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dse: no design point evaluated: %w", firstErr)
	}
	return out, nil
}

// ParetoFront returns the non-dominated subset minimising both junction
// temperature and pumping power, sorted by ascending pump power. A point
// dominates another when it is no worse on both axes and strictly better
// on one.
func ParetoFront(evals []Evaluation) []Evaluation {
	var front []Evaluation
	for i, a := range evals {
		dominated := false
		for j, b := range evals {
			if i == j {
				continue
			}
			if b.JunctionC <= a.JunctionC && b.PumpPowerW <= a.PumpPowerW &&
				(b.JunctionC < a.JunctionC || b.PumpPowerW < a.PumpPowerW) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].PumpPowerW != front[j].PumpPowerW {
			return front[i].PumpPowerW < front[j].PumpPowerW
		}
		return front[i].JunctionC < front[j].JunctionC
	})
	return front
}

// BestUnderLimit returns the feasible evaluation with the lowest pumping
// power — the co-design answer: "minimal pumping power needs, for the
// given temperature constraints".
func BestUnderLimit(evals []Evaluation) (Evaluation, error) {
	best := Evaluation{PumpPowerW: -1}
	for _, e := range evals {
		if !e.Feasible {
			continue
		}
		if best.PumpPowerW < 0 || e.PumpPowerW < best.PumpPowerW {
			best = e
		}
	}
	if best.PumpPowerW < 0 {
		return Evaluation{}, errors.New("dse: no feasible design in the explored space")
	}
	return best, nil
}
