// Package dse implements the electro-thermal co-design exploration of
// §II-C: "Electro-thermal co-design is mandatory to define the optimal
// fluid cavity and corresponding floorplan to achieve highest
// computational performance at minimal chip and pumping power needs, for
// the given temperature constraints."
//
// The explorer sweeps candidate heat-transfer geometries (micro-channel
// arrays of varying width under the TSV spacing constraint; circular
// pin-fin arrays, in-line and staggered) against the pump's flow-rate
// range, scores every design point with a fast one-dimensional junction
// estimator, and reports the feasible set, its Pareto front (junction
// temperature vs. pumping power), and the minimum-power design meeting
// the 85 °C constraint. Channel winners can then be validated against
// the full compact 3D model (Validate).
package dse

import (
	"errors"
	"fmt"

	"repro/internal/fluids"
	"repro/internal/microchannel"
)

// Geometry abstracts one extruded heat-transfer unit-cell structure
// (§II-C "the shape of the heat transfer structure can be chosen freely
// in-plane, but is extruded normal to the surface").
type Geometry interface {
	// Label identifies the design in reports.
	Label() string
	// EffectiveHTC is the footprint-referred heat-transfer coefficient
	// (W/(m²·K)) at cavity flow q (m³/s).
	EffectiveHTC(f fluids.Fluid, q float64) float64
	// PumpingPower is the hydraulic power (W) to push q through the
	// cavity.
	PumpingPower(f fluids.Fluid, q float64) float64
	// Validate rejects unbuildable geometry.
	Validate() error
}

// ChannelGeometry adapts a straight micro-channel array.
type ChannelGeometry struct {
	Arr microchannel.Array
}

// Label implements Geometry.
func (g ChannelGeometry) Label() string {
	return fmt.Sprintf("channels w=%.0fµm p=%.0fµm", g.Arr.Ch.W*1e6, g.Arr.Pitch*1e6)
}

// EffectiveHTC implements Geometry; laminar duct convection is
// flow-independent, so q is unused.
func (g ChannelGeometry) EffectiveHTC(f fluids.Fluid, _ float64) float64 {
	return g.Arr.EffectiveHTC(f)
}

// PumpingPower implements Geometry.
func (g ChannelGeometry) PumpingPower(f fluids.Fluid, q float64) float64 {
	return g.Arr.PumpingPower(f, q)
}

// Validate implements Geometry.
func (g ChannelGeometry) Validate() error { return g.Arr.Ch.Validate() }

// PinFinGeometry adapts a pin-fin array (circular/square/drop, in-line
// or staggered).
type PinFinGeometry struct {
	Arr microchannel.PinFinArray
}

// Label implements Geometry.
func (g PinFinGeometry) Label() string {
	return fmt.Sprintf("pins %s %s d=%.0fµm", g.Arr.Shape, g.Arr.Arrangement, g.Arr.D*1e6)
}

// EffectiveHTC implements Geometry.
func (g PinFinGeometry) EffectiveHTC(f fluids.Fluid, q float64) float64 {
	return g.Arr.EffectiveHTC(f, q)
}

// PumpingPower implements Geometry.
func (g PinFinGeometry) PumpingPower(f fluids.Fluid, q float64) float64 {
	return g.Arr.PumpingPower(f, q)
}

// Validate implements Geometry.
func (g PinFinGeometry) Validate() error { return g.Arr.Validate() }

// Duty is the thermal mission one cavity must meet: one tier's heat into
// one cavity (the paper's stacks pair each tier with a cavity).
type Duty struct {
	// TierPower is the heat load absorbed by the cavity (W).
	TierPower float64
	// FootprintW, FootprintH are the die extents (m); the flow runs
	// along W.
	FootprintW, FootprintH float64
	// DieThickness carries the conduction path junction→cavity wall (m).
	DieThickness float64
	// DieConductivity is the silicon conductivity (W/mK).
	DieConductivity float64
	// InletC is the coolant inlet temperature (°C).
	InletC float64
	// LimitC is the junction constraint (°C), default 85.
	LimitC float64
}

// Validate rejects meaningless duties.
func (d Duty) Validate() error {
	switch {
	case d.TierPower <= 0:
		return errors.New("dse: tier power must be positive")
	case d.FootprintW <= 0 || d.FootprintH <= 0:
		return errors.New("dse: footprint must be positive")
	case d.DieThickness <= 0 || d.DieConductivity <= 0:
		return errors.New("dse: die conduction path must be positive")
	}
	return nil
}

func (d Duty) withDefaults() Duty {
	if d.LimitC == 0 {
		d.LimitC = 85
	}
	return d
}

// Evaluation is one scored design point.
type Evaluation struct {
	Geometry Geometry
	// FlowM3s is the cavity flow rate (m³/s).
	FlowM3s float64
	// JunctionC is the estimated worst junction temperature (°C):
	// inlet + outlet bulk rise + convective film + die conduction.
	JunctionC float64
	// BulkRiseK, FilmRiseK, CondRiseK decompose the estimate.
	BulkRiseK, FilmRiseK, CondRiseK float64
	// PumpPowerW is the hydraulic pumping power (W).
	PumpPowerW float64
	// HeatW is the duty's tier power, kept for COP reporting.
	HeatW float64
	// Feasible marks designs meeting the junction limit.
	Feasible bool
}

// COP returns the cooling coefficient of performance: heat removed per
// watt of pumping power.
func (e Evaluation) COP() float64 {
	if e.PumpPowerW == 0 {
		return 0
	}
	return e.HeatW / e.PumpPowerW
}

// Evaluate scores one geometry at one flow rate for the duty with the
// one-dimensional junction estimator. The worst junction sits over the
// outlet: the coolant has absorbed the whole tier power there, and the
// local film and conduction drops add on top.
func Evaluate(g Geometry, f fluids.Fluid, q float64, d Duty) (Evaluation, error) {
	d = d.withDefaults()
	if err := d.Validate(); err != nil {
		return Evaluation{}, err
	}
	if err := g.Validate(); err != nil {
		return Evaluation{}, err
	}
	if q <= 0 {
		return Evaluation{}, errors.New("dse: flow rate must be positive")
	}
	area := d.FootprintW * d.FootprintH
	flux := d.TierPower / area
	h := g.EffectiveHTC(f, q)
	if h <= 0 {
		return Evaluation{}, fmt.Errorf("dse: %s: non-positive HTC", g.Label())
	}
	ev := Evaluation{
		Geometry:   g,
		FlowM3s:    q,
		BulkRiseK:  d.TierPower / (f.Rho * f.Cp * q),
		FilmRiseK:  flux / h,
		CondRiseK:  flux * d.DieThickness / d.DieConductivity,
		PumpPowerW: g.PumpingPower(f, q),
		HeatW:      d.TierPower,
	}
	ev.JunctionC = d.InletC + ev.BulkRiseK + ev.FilmRiseK + ev.CondRiseK
	ev.Feasible = ev.JunctionC <= d.LimitC
	return ev, nil
}
