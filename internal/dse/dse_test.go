package dse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fluids"
	"repro/internal/microchannel"
	"repro/internal/tsv"
	"repro/internal/units"
)

func tableIDuty() Duty {
	return Duty{
		TierPower:       60,
		FootprintW:      11.5e-3,
		FootprintH:      10e-3,
		DieThickness:    0.15e-3,
		DieConductivity: 130,
		InletC:          27,
	}
}

func demoArray() tsv.Array {
	return tsv.Array{
		Via:   tsv.Via{Diameter: 40e-6, Depth: 380e-6, Liner: 200e-9},
		Pitch: 0.15e-3,
		KOZ:   10e-6,
	}
}

func tableIChannelGeometry(t *testing.T, w float64) ChannelGeometry {
	t.Helper()
	a, err := microchannel.NewArray(
		microchannel.Channel{W: w, H: 0.1e-3, L: 11.5e-3}, 0.15e-3, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	return ChannelGeometry{Arr: a}
}

func TestEvaluateDecomposition(t *testing.T) {
	d := tableIDuty()
	g := tableIChannelGeometry(t, 50e-6)
	q := units.MlPerMinToM3PerS(32.3)
	ev, err := Evaluate(g, fluids.Water(), q, d)
	if err != nil {
		t.Fatal(err)
	}
	sum := d.InletC + ev.BulkRiseK + ev.FilmRiseK + ev.CondRiseK
	if math.Abs(sum-ev.JunctionC) > 1e-9 {
		t.Fatalf("junction %.3f != decomposition %.3f", ev.JunctionC, sum)
	}
	if ev.BulkRiseK <= 0 || ev.FilmRiseK <= 0 || ev.CondRiseK <= 0 {
		t.Fatalf("all rise terms must be positive: %+v", ev)
	}
	if ev.PumpPowerW <= 0 {
		t.Fatal("pumping power must be positive")
	}
	if ev.COP() <= 0 {
		t.Fatal("COP must be positive")
	}
}

func TestEvaluateMonotonicInFlow(t *testing.T) {
	// More flow ⇒ cooler junction (bulk term shrinks, film constant for
	// laminar channels) and more pumping power.
	d := tableIDuty()
	g := tableIChannelGeometry(t, 50e-6)
	w := fluids.Water()
	prev, err := Evaluate(g, w, units.MlPerMinToM3PerS(10), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ml := range []float64{15, 20, 25, 32.3} {
		ev, err := Evaluate(g, w, units.MlPerMinToM3PerS(ml), d)
		if err != nil {
			t.Fatal(err)
		}
		if ev.JunctionC >= prev.JunctionC {
			t.Fatalf("junction must fall with flow: %.2f -> %.2f at %v ml/min",
				prev.JunctionC, ev.JunctionC, ml)
		}
		if ev.PumpPowerW <= prev.PumpPowerW {
			t.Fatalf("pump power must rise with flow at %v ml/min", ml)
		}
		prev = ev
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := tableIChannelGeometry(t, 50e-6)
	if _, err := Evaluate(g, fluids.Water(), 0, tableIDuty()); err == nil {
		t.Fatal("zero flow accepted")
	}
	if _, err := Evaluate(g, fluids.Water(), 1e-6, Duty{}); err == nil {
		t.Fatal("empty duty accepted")
	}
	bad := ChannelGeometry{}
	if _, err := Evaluate(bad, fluids.Water(), 1e-6, tableIDuty()); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestDefaultSpace(t *testing.T) {
	sp, err := DefaultSpace(tableIDuty(), demoArray(),
		units.MlPerMinToM3PerS(10), units.MlPerMinToM3PerS(32.3), 5)
	if err != nil {
		t.Fatal(err)
	}
	// TSV at 150 µm pitch with 40 µm via + 10 µm KOZ leaves 90 µm: the
	// 100 µm channel candidate must be excluded.
	for _, g := range sp.Geometries {
		if ch, ok := g.(ChannelGeometry); ok && ch.Arr.Ch.W > 90e-6 {
			t.Fatalf("channel %v wider than the TSV constraint", ch.Arr.Ch.W)
		}
	}
	// 3 channel widths (30/50/75) + 2 pin arrangements.
	if len(sp.Geometries) != 5 {
		t.Fatalf("geometries = %d, want 5", len(sp.Geometries))
	}
	if len(sp.Flows) != 5 {
		t.Fatalf("flows = %d, want 5", len(sp.Flows))
	}
	if sp.Flows[0] >= sp.Flows[4] {
		t.Fatal("flows not ascending")
	}
}

func TestDefaultSpaceErrors(t *testing.T) {
	if _, err := DefaultSpace(tableIDuty(), demoArray(), 1e-6, 2e-6, 1); err == nil {
		t.Fatal("one flow level accepted")
	}
	if _, err := DefaultSpace(tableIDuty(), demoArray(), 2e-6, 1e-6, 4); err == nil {
		t.Fatal("inverted flow range accepted")
	}
	tight := demoArray()
	tight.Pitch = 62e-6 // leaves 2 µm for channels
	tight.KOZ = 1e-6
	if _, err := DefaultSpace(tableIDuty(), tight, 1e-6, 2e-6, 3); err == nil {
		t.Fatal("unusable TSV constraint accepted")
	}
}

func TestExploreAndBest(t *testing.T) {
	sp, err := DefaultSpace(tableIDuty(), demoArray(),
		units.MlPerMinToM3PerS(10), units.MlPerMinToM3PerS(32.3), 6)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := sp.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(sp.Geometries)*len(sp.Flows) {
		t.Fatalf("evaluations = %d, want %d", len(evals), len(sp.Geometries)*len(sp.Flows))
	}
	best, err := BestUnderLimit(evals)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("best design not feasible")
	}
	for _, e := range evals {
		if e.Feasible && e.PumpPowerW < best.PumpPowerW {
			t.Fatalf("found feasible design cheaper than best: %+v", e)
		}
	}
}

func TestParetoFrontProperties(t *testing.T) {
	sp, err := DefaultSpace(tableIDuty(), demoArray(),
		units.MlPerMinToM3PerS(10), units.MlPerMinToM3PerS(32.3), 6)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := sp.Explore()
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(evals)
	if len(front) == 0 || len(front) > len(evals) {
		t.Fatalf("front size %d out of range", len(front))
	}
	// No front member dominates another; along ascending pump power the
	// junction temperature must descend (otherwise the hotter point
	// would be dominated).
	for i := 1; i < len(front); i++ {
		if front[i].JunctionC >= front[i-1].JunctionC &&
			front[i].PumpPowerW >= front[i-1].PumpPowerW {
			t.Fatalf("front member %d dominated by %d", i, i-1)
		}
	}
	// Every non-front point is dominated by some front point.
	inFront := func(e Evaluation) bool {
		for _, f := range front {
			if f == e {
				return true
			}
		}
		return false
	}
	for _, e := range evals {
		if inFront(e) {
			continue
		}
		dominated := false
		for _, f := range front {
			if f.JunctionC <= e.JunctionC && f.PumpPowerW <= e.PumpPowerW {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("non-front point not dominated: %+v", e)
		}
	}
}

func TestParetoFrontQuick(t *testing.T) {
	// Property: the front of random evaluation clouds is non-dominated
	// and covers the minima of both axes.
	f := func(seeds []uint16) bool {
		if len(seeds) < 2 {
			return true
		}
		evals := make([]Evaluation, len(seeds)/2*2)
		for i := 0; i+1 < len(seeds); i += 2 {
			evals[i] = Evaluation{
				JunctionC:  40 + float64(seeds[i]%1000)/10,
				PumpPowerW: 0.1 + float64(seeds[i+1]%1000)/100,
			}
			evals[i+1] = Evaluation{
				JunctionC:  40 + float64(seeds[i+1]%997)/10,
				PumpPowerW: 0.1 + float64(seeds[i]%997)/100,
			}
		}
		front := ParetoFront(evals)
		if len(front) == 0 {
			return false
		}
		minT, minP := math.Inf(1), math.Inf(1)
		for _, e := range evals {
			minT = math.Min(minT, e.JunctionC)
			minP = math.Min(minP, e.PumpPowerW)
		}
		foundT, foundP := false, false
		for _, e := range front {
			if e.JunctionC == minT {
				foundT = true
			}
			if e.PumpPowerW == minP {
				foundP = true
			}
		}
		return foundT && foundP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBestUnderLimitNoFeasible(t *testing.T) {
	evals := []Evaluation{{JunctionC: 120, Feasible: false}}
	if _, err := BestUnderLimit(evals); err == nil {
		t.Fatal("expected error with no feasible design")
	}
}

func TestValidateAgainstModel(t *testing.T) {
	d := tableIDuty()
	g := tableIChannelGeometry(t, 50e-6)
	ev, err := Evaluate(g, fluids.Water(), units.MlPerMinToM3PerS(32.3), d)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(ev, d, 12)
	if err != nil {
		t.Fatal(err)
	}
	// The 1-D estimator stacks worst-case drops, so it should bound the
	// model from above, within a sane margin.
	if v.ErrorK < -3 {
		t.Fatalf("estimator below model by %.1f K — not conservative", -v.ErrorK)
	}
	if v.ErrorK > 25 {
		t.Fatalf("estimator overshoots model by %.1f K — useless bound", v.ErrorK)
	}
	if v.ModelJunctionC <= d.InletC {
		t.Fatalf("model junction %.1f °C below inlet", v.ModelJunctionC)
	}
}

func TestValidateRejectsPinFins(t *testing.T) {
	sp, err := DefaultSpace(tableIDuty(), demoArray(), 1e-6, 2e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	var pin Geometry
	for _, g := range sp.Geometries {
		if _, ok := g.(PinFinGeometry); ok {
			pin = g
			break
		}
	}
	ev, err := Evaluate(pin, fluids.Water(), 1.5e-6, tableIDuty())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(ev, tableIDuty(), 8); err == nil {
		t.Fatal("pin-fin validation should be rejected")
	}
}

func TestGeometryLabels(t *testing.T) {
	sp, err := DefaultSpace(tableIDuty(), demoArray(), 1e-6, 2e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, g := range sp.Geometries {
		l := g.Label()
		if l == "" || seen[l] {
			t.Fatalf("empty or duplicate label %q", l)
		}
		seen[l] = true
	}
}
