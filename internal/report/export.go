package report

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"strconv"
)

// WriteCSV emits the table as RFC-4180 CSV: one header row followed by
// the data rows. Downstream plotting scripts consume this form of the
// regenerated figures.
func (t *Table) WriteCSV(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the exported JSON shape of a table.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON emits the table as a JSON object {title, columns, rows}.
func (t *Table) WriteJSON(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{Title: t.Title, Columns: t.Columns, Rows: rows})
}

// seriesJSON is the exported JSON shape of a figure.
type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

type figureJSON struct {
	Title  string       `json:"title,omitempty"`
	XLabel string       `json:"xlabel,omitempty"`
	YLabel string       `json:"ylabel,omitempty"`
	Series []seriesJSON `json:"series"`
}

// WriteJSON emits the figure's series as JSON for external plotting.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := figureJSON{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		out.Series = append(out.Series, seriesJSON{Name: s.Name, X: s.X, Y: s.Y})
	}
	if out.Series == nil {
		out.Series = []seriesJSON{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the figure as long-form CSV: series,x,y rows.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			return errors.New("report: series with mismatched x/y lengths")
		}
		for i := range s.X {
			if err := cw.Write([]string{s.Name, formatFloat(s.X[i]), formatFloat(s.Y[i])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders a float for CSV with full round-trip precision.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
