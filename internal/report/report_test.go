package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer") {
		t.Errorf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d, want 5:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")                // short row
	tb.AddRow("1", "2", "3", "4") // long row: extra dropped
	s := tb.String()
	if strings.Contains(s, "4") {
		t.Errorf("extra cell not dropped:\n%s", s)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "name", "val", "n")
	tb.AddRowf("pi", 3.14159, 42)
	s := tb.String()
	if !strings.Contains(s, "3.142") {
		t.Errorf("float not formatted: %s", s)
	}
	if !strings.Contains(s, "42") {
		t.Errorf("int not formatted: %s", s)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "fig", XLabel: "x", YLabel: "y"}
	f.Add("a", []float64{1, 2, 3}, []float64{10, 20, 30})
	f.Add("b", []float64{2, 3, 4}, []float64{5, 6, 7})
	s := f.String()
	for _, want := range []string{"fig", "a", "b", "10", "7"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure render missing %q:\n%s", want, s)
		}
	}
	// x=1 exists only in series a; series b's cell must be blank there.
	lines := strings.Split(s, "\n")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "1 ") && strings.Contains(l, "10") && !strings.Contains(l, "5") {
			found = true
		}
	}
	if !found {
		t.Errorf("sparse series not rendered correctly:\n%s", s)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.675); got != "67.5%" {
		t.Errorf("Pct = %s", got)
	}
}
