// Package report renders experiment results as fixed-width text tables
// and labelled data series — the output layer of the benchmark harness
// that regenerates the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings and %.4g for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Series is one labelled (x, y) data series of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a set of series sharing axes — the textual stand-in for one
// of the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// Render writes the figure's data as aligned columns: one x column and
// one column per series.
func (f *Figure) Render(w io.Writer) error {
	t := NewTable(fmt.Sprintf("%s\n  x: %s  y: %s", f.Title, f.XLabel, f.YLabel))
	t.Columns = append(t.Columns, "x")
	for _, s := range f.Series {
		t.Columns = append(t.Columns, s.Name)
	}
	// Build the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.4g", x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	_ = f.Render(&b)
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
