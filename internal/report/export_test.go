package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("sample", "name", "value")
	t.AddRow("alpha", "1.5")
	t.AddRow("beta, with comma", "2")
	return t
}

func TestTableWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "name" || recs[2][0] != "beta, with comma" {
		t.Fatalf("unexpected records: %v", recs)
	}
}

func TestTableWriteCSVNoColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Table{}).WriteCSV(&buf); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestTableWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "sample" || len(got.Columns) != 2 || len(got.Rows) != 2 {
		t.Fatalf("bad JSON: %+v", got)
	}
}

func TestTableWriteJSONEmptyRows(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable("t", "a")
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows": []`) {
		t.Fatalf("rows should encode as [], got %s", buf.String())
	}
}

func TestFigureWriteJSONAndCSV(t *testing.T) {
	f := &Figure{Title: "fig", XLabel: "x", YLabel: "y"}
	f.Add("s1", []float64{1, 2}, []float64{10, 20})
	f.Add("s2", []float64{1}, []float64{5})

	var jbuf bytes.Buffer
	if err := f.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Series []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
			Y    []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 || got.Series[0].Y[1] != 20 {
		t.Fatalf("bad series JSON: %+v", got)
	}

	var cbuf bytes.Buffer
	if err := f.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 2 + 1
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[1][0] != "s1" || recs[3][0] != "s2" {
		t.Fatalf("unexpected rows: %v", recs)
	}
}

func TestFigureWriteCSVMismatched(t *testing.T) {
	f := &Figure{}
	f.Series = append(f.Series, Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1}})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestFigureWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Figure{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"series": []`) {
		t.Fatalf("series should encode as [], got %s", buf.String())
	}
}
