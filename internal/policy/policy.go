// Package policy implements the run-time thermal-management strategies
// compared in §IV-A of the paper:
//
//   - LB          — dynamic load balancing only (AC_LB / LC_LB; in
//     liquid-cooled mode the pump runs at maximum flow, the
//     worst-case baseline the savings are measured against),
//   - TDVFSLB     — temperature-triggered DVFS on top of load balancing
//     (AC_TDVFS_LB): scale a core's V/f down while it exceeds
//     85 °C, back up when it cools below 82 °C,
//   - Fuzzy       — the LC_FUZZY controller: joint run-time control of
//     coolant flow rate and DVFS driven by a Mamdani fuzzy
//     engine (see internal/fuzzy).
//
// Policies are pure decision functions over a sensor snapshot; the
// simulator owns actuation and bookkeeping.
package policy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fuzzy"
)

// Context is the sensor snapshot a policy sees at a control boundary.
type Context struct {
	// CoreTempC is the per-core temperature (°C) from the distributed
	// sensors (one per core, 100 ms sampling in the paper).
	CoreTempC []float64
	// MaxTempC is the stack-wide junction maximum.
	MaxTempC float64
	// CoreUtil is the per-core utilization demanded this interval.
	CoreUtil []float64
	// MeanUtil is the average of CoreUtil.
	MeanUtil float64
	// CoreLevels is the current per-core DVFS level (0 = fastest).
	CoreLevels []int
	// NumLevels is the DVFS table depth.
	NumLevels int
	// FlowFrac is the current pump setting in [0, 1] (liquid mode).
	FlowFrac float64
	// LiquidCooled reports whether flow control is available.
	LiquidCooled bool
	// TierMaxTempC is the per-tier junction maximum (°C); in
	// liquid-cooled stacks cavity k cools tier k, so per-cavity
	// controllers key on this.
	TierMaxTempC []float64
	// NumCavities is the cavity count (= tier count in the paper's
	// liquid-cooled stacks; 0 when air-cooled).
	NumCavities int
}

// Action is a policy decision.
type Action struct {
	// CoreLevels is the desired per-core DVFS level (0 = fastest).
	CoreLevels []int
	// FlowFrac is the desired pump setting in [0, 1]; ignored when the
	// stack is air-cooled.
	FlowFrac float64
	// PerCavityFlow, when it has Context.NumCavities entries, overrides
	// FlowFrac with one setting per cavity in [0, 1] — the paper's
	// "tune the flow rate of the coolant in each micro-channel".
	PerCavityFlow []float64
	// Rebalance requests a load-balancing pass.
	Rebalance bool
}

// Policy is a thermal-management strategy.
type Policy interface {
	Name() string
	Decide(ctx Context) (Action, error)
}

func validateCtx(ctx Context) error {
	n := len(ctx.CoreTempC)
	if n == 0 || len(ctx.CoreUtil) != n || len(ctx.CoreLevels) != n {
		return fmt.Errorf("policy: inconsistent context shape (%d temps, %d utils, %d levels)",
			n, len(ctx.CoreUtil), len(ctx.CoreLevels))
	}
	if ctx.NumLevels < 1 {
		return errors.New("policy: NumLevels must be >= 1")
	}
	return nil
}

// LB is the load-balancing-only policy. In liquid-cooled mode it pins the
// pump to maximum flow — the "setting the flow rate at the maximum value
// to handle the worst-case temperature" baseline.
type LB struct{}

// Name implements Policy.
func (LB) Name() string { return "LB" }

// Decide implements Policy.
func (LB) Decide(ctx Context) (Action, error) {
	if err := validateCtx(ctx); err != nil {
		return Action{}, err
	}
	return Action{
		CoreLevels: make([]int, len(ctx.CoreTempC)), // all top speed
		FlowFrac:   1,
		Rebalance:  true,
	}, nil
}

// TDVFSLB is temperature-triggered DVFS with load balancing: "as long as
// the temperature is above the threshold and there is a lower setting, we
// scale down the VF value at every scaling interval. When the temperature
// falls below another threshold value (82 °C), we scale up."
type TDVFSLB struct {
	// ThresholdC triggers scaling down (85 °C in the paper).
	ThresholdC float64
	// ReleaseC triggers scaling back up (82 °C in the paper).
	ReleaseC float64
}

// NewTDVFSLB returns the paper-configured policy (85/82 °C).
func NewTDVFSLB() *TDVFSLB { return &TDVFSLB{ThresholdC: 85, ReleaseC: 82} }

// Name implements Policy.
func (p *TDVFSLB) Name() string { return "TDVFS_LB" }

// Decide implements Policy.
func (p *TDVFSLB) Decide(ctx Context) (Action, error) {
	if err := validateCtx(ctx); err != nil {
		return Action{}, err
	}
	if p.ReleaseC >= p.ThresholdC {
		return Action{}, fmt.Errorf("policy: release %v must be below threshold %v", p.ReleaseC, p.ThresholdC)
	}
	levels := make([]int, len(ctx.CoreLevels))
	copy(levels, ctx.CoreLevels)
	for i, t := range ctx.CoreTempC {
		switch {
		case t > p.ThresholdC && levels[i] < ctx.NumLevels-1:
			levels[i]++
		case t < p.ReleaseC && levels[i] > 0:
			levels[i]--
		}
	}
	return Action{CoreLevels: levels, FlowFrac: 1, Rebalance: true}, nil
}

// fuzzyUpdater is the controller contract shared by the Mamdani and
// Sugeno inference engines.
type fuzzyUpdater interface {
	Update(maxTempC, meanUtil float64) (fuzzy.Output, error)
}

// Fuzzy is the LC_FUZZY policy: a fuzzy controller jointly sets the flow
// rate and a stack-wide DVFS bias, refined per core by utilization (idle
// cores never pay a throttle).
type Fuzzy struct {
	name       string
	ctrl       fuzzyUpdater
	thresholdC float64
}

// NewFuzzy builds the paper's Mamdani policy for the given threshold
// (85 °C in the paper).
func NewFuzzy(thresholdC float64) (*Fuzzy, error) {
	c, err := fuzzy.NewController(thresholdC)
	if err != nil {
		return nil, err
	}
	return &Fuzzy{name: "LC_FUZZY", ctrl: c, thresholdC: thresholdC}, nil
}

// NewFuzzySugeno builds the inference-method ablation: the same rule
// base evaluated with zero-order Sugeno inference.
func NewFuzzySugeno(thresholdC float64) (*Fuzzy, error) {
	c, err := fuzzy.NewSugenoController(thresholdC)
	if err != nil {
		return nil, err
	}
	return &Fuzzy{name: "LC_FUZZY_S", ctrl: c, thresholdC: thresholdC}, nil
}

// Name implements Policy.
func (p *Fuzzy) Name() string { return p.name }

// Decide implements Policy.
func (p *Fuzzy) Decide(ctx Context) (Action, error) {
	if err := validateCtx(ctx); err != nil {
		return Action{}, err
	}
	out, err := p.ctrl.Update(ctx.MaxTempC, ctx.MeanUtil)
	if err != nil {
		return Action{}, err
	}
	// Map VFFrac in [0,1] (1 = full speed) to a base level.
	base := int(math.Round((1 - out.VFFrac) * float64(ctx.NumLevels-1)))
	levels := make([]int, len(ctx.CoreTempC))
	for i := range levels {
		// "We apply DVFS based on the core utilization": idle cores keep
		// the throttle only if they are also hot; busy-and-cool cores
		// are left at speed to avoid performance loss.
		l := base
		if ctx.CoreUtil[i] < 0.1 && ctx.CoreTempC[i] < p.thresholdC-10 {
			l = 0
		}
		levels[i] = l
	}
	return Action{CoreLevels: levels, FlowFrac: out.FlowFrac, Rebalance: true}, nil
}

// FuzzyPerCavity is the per-cavity extension of the fuzzy policy: the
// same controller evaluated once per cavity on that tier's junction
// maximum, so a cool cache tier's cavity can idle while the core tier's
// cavity works — finer-grained than the stack-wide flow of LC_FUZZY.
type FuzzyPerCavity struct {
	inner *Fuzzy
}

// NewFuzzyPerCavity builds the per-cavity policy.
func NewFuzzyPerCavity(thresholdC float64) (*FuzzyPerCavity, error) {
	f, err := NewFuzzy(thresholdC)
	if err != nil {
		return nil, err
	}
	return &FuzzyPerCavity{inner: f}, nil
}

// Name implements Policy.
func (p *FuzzyPerCavity) Name() string { return "LC_FUZZY_PC" }

// Decide implements Policy.
func (p *FuzzyPerCavity) Decide(ctx Context) (Action, error) {
	act, err := p.inner.Decide(ctx)
	if err != nil {
		return Action{}, err
	}
	if !ctx.LiquidCooled || ctx.NumCavities == 0 ||
		len(ctx.TierMaxTempC) != ctx.NumCavities {
		// Without per-tier sensing fall back to the stack-wide flow.
		return act, nil
	}
	flows := make([]float64, ctx.NumCavities)
	for k, tMax := range ctx.TierMaxTempC {
		out, err := p.inner.ctrl.Update(tMax, ctx.MeanUtil)
		if err != nil {
			return Action{}, err
		}
		flows[k] = out.FlowFrac
	}
	act.PerCavityFlow = flows
	return act, nil
}
