package policy

import (
	"errors"

	"repro/internal/units"
)

// The policies in this file are ablation baselines for the LC_FUZZY
// design choices: what does the fuzzy engine buy
// over a classical feedforward-PI flow loop, and what does proportional
// actuation buy over a temperature-triggered (bang-bang) pump? Neither
// touches DVFS, isolating the flow-control axis.
//
// A design constraint both must live with: the liquid-cooled stack's
// thermal time constant is shorter than the 1 s control period (the thin
// dies settle between decisions), so a pure feedback loop sees a nearly
// static, quantised plant and limit-cycles unless its per-period gain
// stays small. The PI baseline therefore carries a utilization
// feedforward term and keeps small trim gains; the bang-bang baseline
// swings between a mid and the maximum flow rather than between the
// extremes.

// PID is a classical flow controller: a utilization feedforward plus PI
// trim that drives the hottest core toward a setpoint under the
// threshold. Gains act on the normalised flow fraction per 1 s control
// period.
type PID struct {
	// SetpointC is the target for the stack maximum (°C).
	SetpointC float64
	// FF scales the utilization feedforward: flow ≈ FF·meanUtil before
	// trimming.
	FF float64
	// Kp, Ki are the trim gains on kelvin of error (positive error =
	// too hot = more flow).
	Kp, Ki float64

	integ float64
}

// NewPID returns a controller tuned for the Table-I stack: the
// feedforward supplies the bulk of the flow, the PI trim holds 78 °C.
// Per-period loop gain (Kp+Ki)·|dT/dflow| stays below the discrete
// stability bound (≈0.05·40 K = 2).
func NewPID() *PID {
	return &PID{SetpointC: 78, FF: 1.0, Kp: 0.02, Ki: 0.005}
}

// Name implements Policy.
func (p *PID) Name() string { return "LC_PID" }

// Decide implements Policy.
func (p *PID) Decide(ctx Context) (Action, error) {
	if err := validateCtx(ctx); err != nil {
		return Action{}, err
	}
	if !ctx.LiquidCooled {
		return Action{}, errors.New("policy: LC_PID requires a liquid-cooled stack")
	}
	err := ctx.MaxTempC - p.SetpointC
	u := p.FF*ctx.MeanUtil + p.Kp*err + p.Ki*(p.integ+err)
	flow := units.Clamp(u, 0, 1)
	// Conditional integration (anti-windup): accumulate only while the
	// actuator is off its stops or the error pulls it back inside, and
	// cap the trim authority so long idle stretches cannot bank enough
	// negative integral to blind the loop to a burst.
	if !((flow == 1 && err > 0) || (flow == 0 && err < 0)) {
		p.integ += err
	}
	const trimCap = 0.3 // max |Ki·integ|
	p.integ = units.Clamp(p.integ, -trimCap/p.Ki, trimCap/p.Ki)
	return Action{
		CoreLevels: make([]int, len(ctx.CoreTempC)), // full speed
		FlowFrac:   flow,
		Rebalance:  true,
	}, nil
}

// TTFlow is the temperature-triggered pump: high flow above the trigger,
// low flow below the release, hold in between — the flow-rate analogue
// of the paper's temperature-triggered DVFS.
type TTFlow struct {
	// TriggerC raises the pump to HighFlow (°C).
	TriggerC float64
	// ReleaseC drops it back to LowFlow.
	ReleaseC float64
	// LowFlow and HighFlow are the two settings in [0, 1]. The low
	// setting must still hold the worst single-period excursion under
	// the threshold, because the plant settles between decisions.
	LowFlow, HighFlow float64

	high bool
}

// NewTTFlow returns the ablation configuration: 78/72 °C hysteresis
// between half and full flow.
func NewTTFlow() *TTFlow {
	return &TTFlow{TriggerC: 78, ReleaseC: 72, LowFlow: 0.5, HighFlow: 1}
}

// Name implements Policy.
func (p *TTFlow) Name() string { return "LC_TTFLOW" }

// Decide implements Policy.
func (p *TTFlow) Decide(ctx Context) (Action, error) {
	if err := validateCtx(ctx); err != nil {
		return Action{}, err
	}
	if !ctx.LiquidCooled {
		return Action{}, errors.New("policy: LC_TTFLOW requires a liquid-cooled stack")
	}
	if p.ReleaseC >= p.TriggerC {
		return Action{}, errors.New("policy: release must be below trigger")
	}
	if p.LowFlow < 0 || p.HighFlow > 1 || p.LowFlow >= p.HighFlow {
		return Action{}, errors.New("policy: need 0 <= LowFlow < HighFlow <= 1")
	}
	switch {
	case ctx.MaxTempC > p.TriggerC:
		p.high = true
	case ctx.MaxTempC < p.ReleaseC:
		p.high = false
	}
	flow := p.LowFlow
	if p.high {
		flow = p.HighFlow
	}
	return Action{
		CoreLevels: make([]int, len(ctx.CoreTempC)),
		FlowFrac:   flow,
		Rebalance:  true,
	}, nil
}
