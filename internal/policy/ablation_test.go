package policy

import (
	"testing"
)

func ablationCtx(maxT, meanU float64, n int) Context {
	temps := make([]float64, n)
	utils := make([]float64, n)
	levels := make([]int, n)
	for i := range temps {
		temps[i] = maxT
		utils[i] = meanU
	}
	return Context{
		CoreTempC: temps, MaxTempC: maxT,
		CoreUtil: utils, MeanUtil: meanU,
		CoreLevels: levels, NumLevels: 4,
		LiquidCooled: true,
	}
}

func TestPIDRequiresLiquid(t *testing.T) {
	p := NewPID()
	ctx := ablationCtx(70, 0.5, 4)
	ctx.LiquidCooled = false
	if _, err := p.Decide(ctx); err == nil {
		t.Fatal("PID accepted an air-cooled stack")
	}
}

func TestPIDFeedforwardTracksUtilization(t *testing.T) {
	p := NewPID()
	lo, err := p.Decide(ablationCtx(p.SetpointC, 0.1, 4))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewPID().Decide(ablationCtx(NewPID().SetpointC, 0.9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if hi.FlowFrac <= lo.FlowFrac {
		t.Fatalf("flow must track utilization at zero error: %.2f vs %.2f",
			hi.FlowFrac, lo.FlowFrac)
	}
}

func TestPIDProportionalOnError(t *testing.T) {
	hot, err := NewPID().Decide(ablationCtx(95, 0.5, 4))
	if err != nil {
		t.Fatal(err)
	}
	cool, err := NewPID().Decide(ablationCtx(50, 0.5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if hot.FlowFrac <= cool.FlowFrac {
		t.Fatalf("hotter stack must request more flow: %.2f vs %.2f",
			hot.FlowFrac, cool.FlowFrac)
	}
}

func TestPIDIntegralBounded(t *testing.T) {
	// A very long idle stretch must not bank unbounded negative trim:
	// one hot sample afterwards must still raise the flow decisively.
	p := NewPID()
	for i := 0; i < 10000; i++ {
		if _, err := p.Decide(ablationCtx(45, 0.2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	act, err := p.Decide(ablationCtx(95, 0.9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if act.FlowFrac < 0.8 {
		t.Fatalf("post-idle burst response %.2f too weak — integral wind-up", act.FlowFrac)
	}
}

func TestPIDNeverTouchesDVFS(t *testing.T) {
	act, err := NewPID().Decide(ablationCtx(95, 0.9, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range act.CoreLevels {
		if l != 0 {
			t.Fatalf("core %d throttled to level %d; PID must leave DVFS alone", i, l)
		}
	}
}

func TestTTFlowHysteresis(t *testing.T) {
	p := NewTTFlow()
	// Below release: low flow.
	act, err := p.Decide(ablationCtx(60, 0.5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if act.FlowFrac != p.LowFlow {
		t.Fatalf("flow %.2f below release, want low %.2f", act.FlowFrac, p.LowFlow)
	}
	// Above trigger: high flow.
	act, _ = p.Decide(ablationCtx(p.TriggerC+1, 0.5, 4))
	if act.FlowFrac != p.HighFlow {
		t.Fatalf("flow %.2f above trigger, want high %.2f", act.FlowFrac, p.HighFlow)
	}
	// Inside the band while high: hold high.
	act, _ = p.Decide(ablationCtx(p.ReleaseC+1, 0.5, 4))
	if act.FlowFrac != p.HighFlow {
		t.Fatal("flow released inside the hysteresis band")
	}
	// Below release: back to low.
	act, _ = p.Decide(ablationCtx(p.ReleaseC-1, 0.5, 4))
	if act.FlowFrac != p.LowFlow {
		t.Fatal("flow not released below the release temperature")
	}
}

func TestTTFlowValidation(t *testing.T) {
	bad := &TTFlow{TriggerC: 70, ReleaseC: 75, LowFlow: 0.5, HighFlow: 1}
	if _, err := bad.Decide(ablationCtx(60, 0.5, 4)); err == nil {
		t.Fatal("inverted hysteresis accepted")
	}
	bad = &TTFlow{TriggerC: 78, ReleaseC: 72, LowFlow: 0.9, HighFlow: 0.5}
	if _, err := bad.Decide(ablationCtx(60, 0.5, 4)); err == nil {
		t.Fatal("inverted flow levels accepted")
	}
	p := NewTTFlow()
	ctx := ablationCtx(60, 0.5, 4)
	ctx.LiquidCooled = false
	if _, err := p.Decide(ctx); err == nil {
		t.Fatal("TTFlow accepted an air-cooled stack")
	}
}

func TestAblationPoliciesRejectBadContext(t *testing.T) {
	for _, pol := range []Policy{NewPID(), NewTTFlow()} {
		if _, err := pol.Decide(Context{}); err == nil {
			t.Errorf("%s accepted an empty context", pol.Name())
		}
	}
}

func TestFuzzyPerCavitySplitsFlow(t *testing.T) {
	p, err := NewFuzzyPerCavity(85)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ablationCtx(70, 0.5, 8)
	ctx.NumCavities = 4
	ctx.TierMaxTempC = []float64{45, 83, 83, 45} // hot core tiers inside
	act, err := p.Decide(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(act.PerCavityFlow) != 4 {
		t.Fatalf("per-cavity flows = %d, want 4", len(act.PerCavityFlow))
	}
	if act.PerCavityFlow[1] <= act.PerCavityFlow[0] {
		t.Fatalf("hot tier cavity %.2f should outrun cool tier %.2f",
			act.PerCavityFlow[1], act.PerCavityFlow[0])
	}
	for k, f := range act.PerCavityFlow {
		if f < 0 || f > 1 {
			t.Fatalf("cavity %d flow %.2f outside [0,1]", k, f)
		}
	}
}

func TestFuzzyPerCavityFallsBackWithoutTierSensing(t *testing.T) {
	p, err := NewFuzzyPerCavity(85)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ablationCtx(70, 0.5, 8)
	ctx.NumCavities = 4
	ctx.TierMaxTempC = nil
	act, err := p.Decide(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if act.PerCavityFlow != nil {
		t.Fatal("expected stack-wide fallback without per-tier sensing")
	}
	if act.FlowFrac < 0 || act.FlowFrac > 1 {
		t.Fatalf("fallback flow %.2f outside [0,1]", act.FlowFrac)
	}
}
