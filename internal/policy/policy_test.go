package policy

import (
	"testing"
)

func ctx(temps []float64, utils []float64, levels []int) Context {
	mean := 0.0
	for _, u := range utils {
		mean += u
	}
	if len(utils) > 0 {
		mean /= float64(len(utils))
	}
	maxT := temps[0]
	for _, t := range temps {
		if t > maxT {
			maxT = t
		}
	}
	return Context{
		CoreTempC:    temps,
		MaxTempC:     maxT,
		CoreUtil:     utils,
		MeanUtil:     mean,
		CoreLevels:   levels,
		NumLevels:    4,
		LiquidCooled: true,
	}
}

func TestLBAlwaysMaxFlowFullSpeed(t *testing.T) {
	c := ctx([]float64{90, 50}, []float64{0.9, 0.1}, []int{2, 0})
	a, err := LB{}.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.FlowFrac != 1 {
		t.Errorf("LB flow = %v, want 1 (worst-case max flow)", a.FlowFrac)
	}
	for i, l := range a.CoreLevels {
		if l != 0 {
			t.Errorf("LB level[%d] = %d, want 0", i, l)
		}
	}
	if !a.Rebalance {
		t.Error("LB must request load balancing")
	}
}

func TestLBValidatesContext(t *testing.T) {
	bad := Context{CoreTempC: []float64{50}, CoreUtil: []float64{}, CoreLevels: []int{0}, NumLevels: 4}
	if _, err := (LB{}).Decide(bad); err == nil {
		t.Error("inconsistent context must fail")
	}
	zero := Context{}
	if _, err := (LB{}).Decide(zero); err == nil {
		t.Error("empty context must fail")
	}
}

func TestTDVFSScalesDownAboveThreshold(t *testing.T) {
	p := NewTDVFSLB()
	c := ctx([]float64{86, 80}, []float64{0.5, 0.5}, []int{0, 0})
	a, err := p.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.CoreLevels[0] != 1 {
		t.Errorf("hot core level = %d, want 1 (scaled down)", a.CoreLevels[0])
	}
	if a.CoreLevels[1] != 0 {
		t.Errorf("core in hysteresis band level = %d, want 0 (unchanged)", a.CoreLevels[1])
	}
}

func TestTDVFSScalesUpBelowRelease(t *testing.T) {
	p := NewTDVFSLB()
	c := ctx([]float64{75, 83}, []float64{0.5, 0.5}, []int{2, 2})
	a, err := p.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.CoreLevels[0] != 1 {
		t.Errorf("cool core level = %d, want 1 (scaled up)", a.CoreLevels[0])
	}
	if a.CoreLevels[1] != 2 {
		t.Errorf("83°C core level = %d, want 2 (within 82-85 hysteresis)", a.CoreLevels[1])
	}
}

func TestTDVFSSaturatesAtLowestLevel(t *testing.T) {
	p := NewTDVFSLB()
	c := ctx([]float64{99}, []float64{1}, []int{3})
	a, err := p.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.CoreLevels[0] != 3 {
		t.Errorf("level = %d, want clamp at 3", a.CoreLevels[0])
	}
}

func TestTDVFSOneStepPerInterval(t *testing.T) {
	// "We scale down the VF value at every scaling interval" — one step
	// per decision, not a jump to the bottom.
	p := NewTDVFSLB()
	c := ctx([]float64{120}, []float64{1}, []int{0})
	a, err := p.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.CoreLevels[0] != 1 {
		t.Errorf("level = %d, want 1 (single step)", a.CoreLevels[0])
	}
}

func TestTDVFSRejectsBadThresholds(t *testing.T) {
	p := &TDVFSLB{ThresholdC: 80, ReleaseC: 85}
	if _, err := p.Decide(ctx([]float64{50}, []float64{0.5}, []int{0})); err == nil {
		t.Error("release above threshold must fail")
	}
}

func TestFuzzyColdIdleMinimumFlow(t *testing.T) {
	p, err := NewFuzzy(85)
	if err != nil {
		t.Fatal(err)
	}
	utils := []float64{0.02, 0.02, 0.02, 0.02}
	temps := []float64{40, 41, 39, 40}
	a, err := p.Decide(ctx(temps, utils, []int{0, 0, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if a.FlowFrac > 0.25 {
		t.Errorf("cold idle flow = %v, want near min (no over-cooling)", a.FlowFrac)
	}
	for i, l := range a.CoreLevels {
		if l != 0 {
			t.Errorf("idle cool core %d throttled to %d", i, l)
		}
	}
}

func TestFuzzyCriticalMaxFlow(t *testing.T) {
	p, err := NewFuzzy(85)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Decide(ctx([]float64{92, 91}, []float64{0.9, 0.95}, []int{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if a.FlowFrac < 0.85 {
		t.Errorf("critical flow = %v, want near max", a.FlowFrac)
	}
	// Critical and busy: some throttle is expected.
	throttled := false
	for _, l := range a.CoreLevels {
		if l > 0 {
			throttled = true
		}
	}
	if !throttled {
		t.Error("critical busy system should throttle")
	}
}

func TestFuzzyIdleCoresKeepSpeed(t *testing.T) {
	// "We apply DVFS based on the core utilization": an idle, cool core
	// is never throttled even when the stack-wide decision is to slow
	// down.
	p, err := NewFuzzy(85)
	if err != nil {
		t.Fatal(err)
	}
	temps := []float64{95, 60}
	utils := []float64{0.95, 0.02}
	a, err := p.Decide(ctx(temps, utils, []int{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if a.CoreLevels[1] != 0 {
		t.Errorf("idle cool core throttled to level %d", a.CoreLevels[1])
	}
}

func TestPolicyNames(t *testing.T) {
	if (LB{}).Name() != "LB" {
		t.Error("LB name")
	}
	if NewTDVFSLB().Name() != "TDVFS_LB" {
		t.Error("TDVFS name")
	}
	p, _ := NewFuzzy(85)
	if p.Name() != "LC_FUZZY" {
		t.Error("fuzzy name")
	}
}

func TestNewFuzzyValidation(t *testing.T) {
	if _, err := NewFuzzy(10); err == nil {
		t.Error("implausible threshold must fail")
	}
}
