package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
)

// oneShard keeps the whole store on a single shard so an injected fault
// deterministically wedges the shard every Put lands on.
func oneShard(dir string) Options {
	o := smallOpts(dir)
	o.Shards = 1
	return o
}

// TestShardWedgeAfterFsyncFailureRecovery is the fsyncgate property: a
// failed WAL fsync permanently wedges the shard into degraded read-only
// mode — a later fsync "success" proves nothing about the pages the
// kernel already dropped, so durability is never re-acknowledged — while
// reads keep serving and a fault-free reopen recovers every write that
// was acknowledged before the failure.
func TestShardWedgeAfterFsyncFailureRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(oneShard(dir))
	if err != nil {
		t.Fatal(err)
	}
	const acked = 20
	for i := 0; i < acked; i++ {
		if err := st.Put(fmt.Sprintf("key-%03d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Healthy() {
		t.Fatal("healthy store reports unhealthy")
	}

	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{Point: "store.wal.fsync", Mode: fault.ModeError, Times: 1}))
	err = st.Put("victim", val(999))
	if err == nil {
		t.Fatal("Put with failing fsync was acknowledged")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("victim Put error %v does not wrap the injected fault", err)
	}

	// Sticky: the injected rule is exhausted (Times:1) and even fully
	// disabling injection must not bring writes back — the shard must
	// never re-acknowledge durability after a failed fsync.
	fault.Disable()
	for i := 0; i < 3; i++ {
		if err := st.Put("after-wedge", val(i)); !errors.Is(err, ErrWedged) {
			t.Fatalf("Put after wedge = %v, want ErrWedged", err)
		}
	}
	if err := st.Delete("key-000"); !errors.Is(err, ErrWedged) {
		t.Fatalf("Delete after wedge = %v, want ErrWedged", err)
	}

	// Degraded read-only: every previously acknowledged key still serves.
	for i := 0; i < acked; i++ {
		v, ok, err := st.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("wedged read %d: ok=%v err=%v", i, ok, err)
		}
	}

	// The wedge is visible on the stats surface.
	if st.Healthy() {
		t.Fatal("wedged store reports healthy")
	}
	stats := st.Stats()
	if stats.WedgedShards != 1 {
		t.Fatalf("WedgedShards = %d, want 1", stats.WedgedShards)
	}
	var sawWedged bool
	for _, sh := range stats.Shards {
		if sh.Wedged {
			sawWedged = true
			if sh.WedgeReason == "" {
				t.Fatal("wedged shard has empty WedgeReason")
			}
		}
	}
	if !sawWedged {
		t.Fatal("no shard reports Wedged in stats")
	}

	// Close must not attempt a checkpoint (it would advance the
	// checkpoint LSN past data of unknown durability); it just releases
	// handles. Reopening fault-free replays the WAL to the last
	// trustworthy state: every acknowledged write is there.
	_ = st.Close()
	st2, err := Open(oneShard(dir))
	if err != nil {
		t.Fatalf("reopen after wedge: %v", err)
	}
	defer st2.Close()
	if !st2.Healthy() {
		t.Fatal("reopened store is not healthy")
	}
	for i := 0; i < acked; i++ {
		v, ok, err := st2.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("post-reopen read %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Writes are accepted again on the fresh, fault-free incarnation.
	if err := st2.Put("fresh", val(7)); err != nil {
		t.Fatalf("post-reopen Put: %v", err)
	}
}

// TestShardWedgeAfterWritebackTornWriteRecovery wedges via the page
// writeback path: a torn page write during checkpoint leaves a page of
// unknown integrity on disk, so the shard degrades read-only and a
// reopen recovers from the WAL (the torn page is rejected by its CRC).
func TestShardWedgeAfterWritebackTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(oneShard(dir))
	if err != nil {
		t.Fatal(err)
	}
	const acked = 30
	for i := 0; i < acked; i++ {
		if err := st.Put(fmt.Sprintf("key-%03d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(3, fault.Rule{Point: "store.page.writeback", Mode: fault.ModeTorn, Times: 1}))
	if err := st.Flush(); err == nil {
		t.Fatal("checkpoint with torn writeback succeeded")
	}
	fault.Disable()

	if st.Healthy() {
		t.Fatal("store healthy after torn writeback")
	}
	if err := st.Put("post", val(1)); !errors.Is(err, ErrWedged) {
		t.Fatalf("Put after torn writeback = %v, want ErrWedged", err)
	}
	for i := 0; i < acked; i++ {
		v, ok, err := st.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("wedged read %d: ok=%v err=%v", i, ok, err)
		}
	}

	_ = st.Close()
	st2, err := Open(oneShard(dir))
	if err != nil {
		t.Fatalf("reopen after torn writeback: %v", err)
	}
	defer st2.Close()
	for i := 0; i < acked; i++ {
		v, ok, err := st2.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("post-reopen read %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestStoreHealthySurvivesPartialWedge: with several shards, wedging
// one leaves the others writable while Healthy() and WedgedShards
// report the degradation.
func TestStoreHealthySurvivesPartialWedge(t *testing.T) {
	st, err := Open(smallOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	t.Cleanup(fault.Disable)
	fault.Enable(fault.New(1, fault.Rule{Point: "store.wal.fsync", Mode: fault.ModeError, Times: 1}))
	// Drive Puts until the single-shot rule wedges whichever shard the
	// first synced Put lands on.
	var wedgedOnce bool
	for i := 0; i < 50; i++ {
		if err := st.Put(fmt.Sprintf("w-%03d", i), val(i)); err != nil {
			wedgedOnce = true
			break
		}
	}
	fault.Disable()
	if !wedgedOnce {
		t.Fatal("injected fsync fault never fired")
	}
	if st.Healthy() {
		t.Fatal("store healthy with a wedged shard")
	}
	if got := st.Stats().WedgedShards; got != 1 {
		t.Fatalf("WedgedShards = %d, want 1", got)
	}
	// The other shard still accepts writes: spray keys and require at
	// least one success and at least one ErrWedged.
	var oks, wedged int
	for i := 0; i < 50; i++ {
		err := st.Put(fmt.Sprintf("x-%03d", i), val(i))
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrWedged):
			wedged++
		default:
			t.Fatalf("unexpected Put error: %v", err)
		}
	}
	if oks == 0 || wedged == 0 {
		t.Fatalf("partial wedge not partial: %d ok, %d wedged", oks, wedged)
	}
}
