package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Options tunes an Open call. The zero value gets sensible defaults;
// Dir is required.
type Options struct {
	// Dir is the store root; each shard lives in Dir/shard-NNN.
	Dir string
	// Shards is the consistent-hash shard count (default 4). Persisted
	// on first open; pass 0 on a reopen to adopt the persisted count,
	// any other mismatch is an error.
	Shards int
	// PoolPages caps the total buffer-pool frames across all shards
	// (default 1024, split evenly; every shard gets at least one frame,
	// and the pool itself enforces a small per-shard minimum).
	PoolPages int
	// PageSize is the slotted-page unit in bytes (default 8192).
	// Persisted on first open; pass 0 on a reopen to adopt the
	// persisted size, any other mismatch is an error.
	PageSize int
	// SegmentBytes caps one data segment file (default 4 MiB).
	SegmentBytes int64
	// WALSegmentBytes caps one WAL segment file (default 4 MiB).
	WALSegmentBytes int64
	// CompactFraction triggers background compaction when dead bytes
	// exceed this fraction of a shard's total (default 0.5).
	CompactFraction float64
	// CompactMinBytes suppresses compaction below this total footprint
	// (default 1 MiB).
	CompactMinBytes int64
	// Peer, when set, is consulted on a local miss: a hit warm-fills
	// the owning shard before returning, so a fresh replica heals from
	// its peers instead of recomputing.
	Peer PeerFiller
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 1024
	}
	if o.PageSize <= 0 {
		o.PageSize = 8192
	}
	if o.PageSize < 512 {
		o.PageSize = 512
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.WALSegmentBytes <= 0 {
		o.WALSegmentBytes = 4 << 20
	}
	if o.CompactFraction <= 0 || o.CompactFraction >= 1 {
		o.CompactFraction = 0.5
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	return o
}

// PeerFiller fetches a missing key from a peer replica — the warm-fill
// hook that lets a restarted or newly added node serve from the fleet's
// collective memo table instead of recomputing. Implementations must be
// safe for concurrent use; a miss returns (nil, false).
type PeerFiller interface {
	FetchPeer(key string) ([]byte, bool)
}

// StorePeer adapts another Store into a PeerFiller (replica warm-fill
// in tests and single-process fleets). Lookups are local-only so two
// stores peering at each other cannot recurse.
type StorePeer struct{ S *Store }

// FetchPeer implements PeerFiller.
func (p StorePeer) FetchPeer(key string) ([]byte, bool) {
	v, ok, err := p.S.GetLocal(key)
	if err != nil {
		return nil, false
	}
	return v, ok
}

// storeManifest pins the layout parameters a directory was created
// with, so a reopen cannot silently reshard or change page geometry.
type storeManifest struct {
	Version  int `json:"version"`
	Shards   int `json:"shards"`
	PageSize int `json:"page_size"`
}

const storeManifestVersion = 1

// Store is the durable scenario-result store: a consistent-hash ring
// of WAL-backed page shards. Safe for concurrent use.
type Store struct {
	dir    string
	ring   *Ring
	shards []*Shard
	peer   PeerFiller

	peerFills      atomic.Uint64
	peerMisses     atomic.Uint64
	peerFillErrors atomic.Uint64
}

// Open opens (or creates) the store rooted at opt.Dir, recovering
// every shard: segment scan, WAL replay, torn-tail truncation.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	// An explicit sub-minimum page size rounds up before the manifest
	// comparison, matching what a create would have persisted.
	if opt.PageSize > 0 && opt.PageSize < 512 {
		opt.PageSize = 512
	}
	manPath := filepath.Join(opt.Dir, "STORE")
	if data, err := os.ReadFile(manPath); err == nil {
		var m storeManifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("store: corrupt manifest %s: %w", manPath, err)
		}
		if m.Version != storeManifestVersion {
			return nil, fmt.Errorf("store: manifest version %d unsupported", m.Version)
		}
		// Zero-valued layout options adopt the persisted geometry — the
		// defaults must not shadow what the directory was created with —
		// while an explicit conflicting value stays an error.
		if opt.Shards <= 0 {
			opt.Shards = m.Shards
		} else if m.Shards != opt.Shards {
			return nil, fmt.Errorf("store: %s was created with %d shards, reopened with %d — shard count is fixed at creation", opt.Dir, m.Shards, opt.Shards)
		}
		if opt.PageSize <= 0 {
			opt.PageSize = m.PageSize
		} else if m.PageSize != opt.PageSize {
			return nil, fmt.Errorf("store: %s was created with page size %d, reopened with %d", opt.Dir, m.PageSize, opt.PageSize)
		}
		opt = opt.withDefaults()
	} else if os.IsNotExist(err) {
		opt = opt.withDefaults()
		data, merr := json.Marshal(storeManifest{Version: storeManifestVersion, Shards: opt.Shards, PageSize: opt.PageSize})
		if merr != nil {
			return nil, merr
		}
		if err := os.WriteFile(manPath, data, 0o644); err != nil {
			return nil, err
		}
		if err := syncDir(opt.Dir); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	perShard := opt
	// Clamp the even split to at least one frame per shard: a total cap
	// below the shard count must stay a tiny pool, not re-default to
	// 1024 frames per shard inside OpenShard.
	perShard.PoolPages = opt.PoolPages / opt.Shards
	if perShard.PoolPages < 1 {
		perShard.PoolPages = 1
	}
	st := &Store{
		dir:  opt.Dir,
		ring: NewRing(opt.Shards),
		peer: opt.Peer,
	}
	for i := 0; i < opt.Shards; i++ {
		sh, err := OpenShard(filepath.Join(opt.Dir, fmt.Sprintf("shard-%03d", i)), perShard)
		if err != nil {
			for _, prev := range st.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("store: open shard %d: %w", i, err)
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// Dir returns the store root directory.
func (s *Store) Dir() string { return s.dir }

// shard returns the owning shard for key.
func (s *Store) shard(key string) *Shard {
	return s.shards[s.ring.Owner(key)]
}

// Get returns the value for key. A local miss consults the peer filler
// (when configured): a peer hit warm-fills the owning shard — durably,
// so the heal survives the next restart — before returning.
func (s *Store) Get(key string) ([]byte, bool, error) {
	v, ok, err := s.shard(key).Get(key)
	if err != nil || ok {
		return v, ok, err
	}
	if s.peer == nil {
		return nil, false, nil
	}
	pv, pok := s.peer.FetchPeer(key)
	if !pok {
		s.peerMisses.Add(1)
		return nil, false, nil
	}
	s.peerFills.Add(1)
	if err := s.shard(key).Put(key, pv); err != nil {
		// The fetched value is still good — serve it even though the
		// local fill failed — but count the failure: a replica that can
		// never durably adopt peer values re-fetches on every miss and
		// must be visible in the stats.
		s.peerFillErrors.Add(1)
	}
	return pv, true, nil
}

// GetLocal is Get without the peer hook — what a peer serves, so that
// mutually-peered stores terminate.
func (s *Store) GetLocal(key string) ([]byte, bool, error) {
	return s.shard(key).Get(key)
}

// Put durably stores key → val on its owning shard.
func (s *Store) Put(key string, val []byte) error {
	return s.shard(key).Put(key, val)
}

// Delete durably removes key.
func (s *Store) Delete(key string) error {
	return s.shard(key).Delete(key)
}

// Len returns the live entry count across shards.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Flush checkpoints every shard: all acknowledged entries land in
// fsynced pages and the WAL prefix is dropped.
func (s *Store) Flush() error {
	for i, sh := range s.shards {
		if err := sh.Checkpoint(); err != nil {
			return fmt.Errorf("store: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// Healthy reports whether every shard can still acknowledge durable
// writes — false once any shard wedged into degraded read-only mode
// after a durability failure (see ErrWedged). Reads keep serving either
// way; the HTTP service's /readyz uses this to stop routing traffic to
// a replica that can no longer persist results.
func (s *Store) Healthy() bool {
	for _, sh := range s.shards {
		if sh.wedged() != nil {
			return false
		}
	}
	return true
}

// Compact synchronously compacts every shard (tests and maintenance;
// live shards compact themselves in the background).
func (s *Store) Compact() error {
	for i, sh := range s.shards {
		if err := sh.Compact(); err != nil {
			return fmt.Errorf("store: compact shard %d: %w", i, err)
		}
	}
	return nil
}

// Close checkpoints and closes every shard. The store must not be used
// afterwards.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats is the store-wide snapshot: totals plus per-shard detail — the
// /v1/stats surface.
type Stats struct {
	// Entries is the live key count across shards.
	Entries int `json:"entries"`
	// LiveBytes/DeadBytes/DiskBytes aggregate the shards' page
	// accounting.
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	DiskBytes int64 `json:"disk_bytes"`
	// Puts/Gets/Hits/Deletes aggregate operations.
	Puts    uint64 `json:"puts"`
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Deletes uint64 `json:"deletes"`
	// Compactions counts segment rewrites across shards.
	Compactions uint64 `json:"compactions"`
	// WedgedShards counts shards in degraded read-only mode after a
	// durability failure (per-shard detail in Shards[i].Wedged/
	// WedgeReason). Non-zero means Puts to those shards fail and /readyz
	// reports the replica unready; reads keep serving.
	WedgedShards int `json:"wedged_shards"`
	// PeerFills/PeerMisses count warm-fill outcomes on local misses;
	// PeerFillErrors counts fetched values whose durable local adopt
	// failed (the value was still served).
	PeerFills      uint64 `json:"peer_fills"`
	PeerMisses     uint64 `json:"peer_misses"`
	PeerFillErrors uint64 `json:"peer_fill_errors"`
	// Peers is the per-peer health detail (fetches, hits, errors,
	// breaker state) when the configured filler keeps it (HTTPPeer).
	Peers []PeerStats `json:"peers,omitempty"`
	// WAL and Pool aggregate the per-shard logs and buffer pools.
	WAL  WALStats  `json:"wal"`
	Pool PoolStats `json:"pool"`
	// Shards is the per-shard detail, index-aligned with the ring.
	Shards []ShardStats `json:"shards"`
}

// Stats snapshots every shard and folds the totals.
func (s *Store) Stats() Stats {
	out := Stats{
		PeerFills:      s.peerFills.Load(),
		PeerMisses:     s.peerMisses.Load(),
		PeerFillErrors: s.peerFillErrors.Load(),
	}
	if ph, ok := s.peer.(PeerHealth); ok {
		out.Peers = ph.PeerStats()
	}
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Shards = append(out.Shards, st)
		if st.Wedged {
			out.WedgedShards++
		}
		out.Entries += st.Entries
		out.LiveBytes += st.LiveBytes
		out.DeadBytes += st.DeadBytes
		out.DiskBytes += st.DiskBytes
		out.Puts += st.Puts
		out.Gets += st.Gets
		out.Hits += st.Hits
		out.Deletes += st.Deletes
		out.Compactions += st.Compactions
		out.WAL.Appends += st.WAL.Appends
		out.WAL.AppendedBytes += st.WAL.AppendedBytes
		out.WAL.Syncs += st.WAL.Syncs
		out.WAL.Fsyncs += st.WAL.Fsyncs
		out.WAL.Rotations += st.WAL.Rotations
		out.WAL.Segments += st.WAL.Segments
		out.WAL.ReplayRecords += st.WAL.ReplayRecords
		out.WAL.TruncatedBytes += st.WAL.TruncatedBytes
		out.Pool.Hits += st.Pool.Hits
		out.Pool.Misses += st.Pool.Misses
		out.Pool.Evictions += st.Pool.Evictions
		out.Pool.Writebacks += st.Pool.Writebacks
		out.Pool.Pages += st.Pool.Pages
		out.Pool.Capacity += st.Pool.Capacity
	}
	return out
}
