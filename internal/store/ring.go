package store

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is the number of virtual points each shard contributes:
// enough for an even spread at single-digit shard counts without
// making the lookup table noticeable.
const ringVnodes = 64

// Ring is a consistent-hash router mapping keys onto shard indices.
// The same code routes across local shard directories today and across
// replicas later: adding a shard remaps only the keys that land on its
// new arc, not the whole space.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over n shards.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{points: make([]ringPoint, 0, n*ringVnodes), shards: n}
	for s := 0; s < n; s++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Owner returns the shard index owning key: the first ring point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the shard count the ring routes across.
func (r *Ring) Shards() int { return r.shards }

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// FNV diffuses the final bytes through a single multiply, which
	// leaves keys with near-identical suffixes adjacent on the ring.
	// Finish with a splitmix64-style avalanche so they spread.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
