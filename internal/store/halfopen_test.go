package store

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPPeerHalfOpenSingleProbeUnderLoad: when a tripped breaker's
// probe interval elapses under concurrent load, exactly one fetch is
// admitted as the half-open probe; every concurrent loser skips the
// peer without sending a request or counting a failure. The probe is
// held open inside the peer's handler while the losers run, so the
// exactly-one property is asserted deterministically, not by timing.
func TestHTTPPeerHalfOpenSingleProbeUnderLoad(t *testing.T) {
	data := map[string][]byte{"k": []byte("v")}
	var down atomic.Bool
	down.Store(true)
	probeEntered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		probeEntered <- struct{}{}
		<-release
		peerHandler(t, data, nil).ServeHTTP(w, r)
	}))
	defer srv.Close()

	opt := fastPeerOpts() // TripAfter: 2, ProbeAfter: 1h
	opt.Attempts = 1
	p := NewHTTPPeer([]string{srv.URL}, opt)
	var mu sync.Mutex
	now := time.Now()
	p.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	// Trip the breaker with two failed fetches.
	for i := 0; i < opt.TripAfter; i++ {
		if _, ok := p.FetchPeer("k"); ok {
			t.Fatal("hit from a down peer")
		}
	}
	st := p.PeerStats()[0]
	if !st.Tripped || st.Trips != 1 {
		t.Fatalf("breaker did not trip: %+v", st)
	}
	errsAtTrip := st.Errors
	fetchesAtTrip := st.Fetches

	// Recover the peer and move past the probe interval: the next fetch
	// becomes the half-open probe and blocks inside the handler.
	down.Store(false)
	mu.Lock()
	now = now.Add(opt.ProbeAfter + time.Second)
	mu.Unlock()
	probeResult := make(chan bool, 1)
	go func() {
		_, ok := p.FetchPeer("k")
		probeResult <- ok
	}()
	<-probeEntered

	// Concurrent losers while the probe is in flight: all must skip.
	const losers = 8
	var wg sync.WaitGroup
	var loserHits atomic.Int64
	for i := 0; i < losers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := p.FetchPeer("k"); ok {
				loserHits.Add(1)
			}
		}()
	}
	wg.Wait()
	close(release)
	if !<-probeResult {
		t.Fatal("half-open probe against a recovered peer failed")
	}

	if n := loserHits.Load(); n != 0 {
		t.Fatalf("%d losers got hits while the probe was in flight", n)
	}
	st = p.PeerStats()[0]
	if st.Probes != 1 {
		t.Fatalf("probes = %d, want exactly 1", st.Probes)
	}
	if st.Skips != losers {
		t.Fatalf("skips = %d, want %d (every loser)", st.Skips, losers)
	}
	if st.Fetches != fetchesAtTrip+1 {
		t.Fatalf("fetches = %d, want %d (losers must not send requests)",
			st.Fetches, fetchesAtTrip+1)
	}
	if st.Errors != errsAtTrip {
		t.Fatalf("errors grew %d → %d: losers counted failures", errsAtTrip, st.Errors)
	}
	if st.Tripped || st.ConsecutiveFailures != 0 {
		t.Fatalf("breaker not closed after successful probe: %+v", st)
	}
	// And the closed breaker serves normal traffic again.
	if v, ok := p.FetchPeer("k"); !ok || string(v) != "v" {
		t.Fatalf("closed breaker not serving: ok=%v v=%q", ok, v)
	}
}
