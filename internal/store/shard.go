package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// ErrWedged reports an operation rejected because the shard is in
// degraded read-only mode after a durability failure (failed WAL fsync
// or page writeback). A wedged shard never acknowledges another durable
// write — re-trying the fsync and acknowledging on success would be
// wrong, since the kernel may have dropped the dirty pages when the
// first one failed — but keeps serving reads. Recovery is a reopen:
// replay trusts only what was acknowledged before the failure.
var ErrWedged = errors.New("store: shard wedged (degraded read-only after durability failure)")

// shardMeta is the atomically-replaced shard manifest: which segment
// epoch is live and up to which LSN the pages already contain every
// record (so replay can skip the WAL prefix).
type shardMeta struct {
	Version       int    `json:"version"`
	Epoch         uint64 `json:"epoch"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	PageSize      int    `json:"page_size"`
}

const shardMetaVersion = 1

// ShardStats snapshots one shard's counters.
type ShardStats struct {
	// Entries is the live key count.
	Entries int `json:"entries"`
	// LiveBytes is the page footprint of live entries.
	LiveBytes int64 `json:"live_bytes"`
	// DeadBytes is the page footprint of overwritten/deleted entries
	// awaiting compaction.
	DeadBytes int64 `json:"dead_bytes"`
	// DiskBytes is the total size of the shard's segment files.
	DiskBytes int64 `json:"disk_bytes"`
	// Segments is the shard's segment-file count.
	Segments int `json:"segments"`
	// Puts/Gets/Hits/Deletes count operations (Hits ⊆ Gets).
	Puts    uint64 `json:"puts"`
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Deletes uint64 `json:"deletes"`
	// Compactions counts segment rewrites; ReclaimedBytes sums the dead
	// bytes they dropped.
	Compactions    uint64    `json:"compactions"`
	ReclaimedBytes int64     `json:"reclaimed_bytes"`
	WAL            WALStats  `json:"wal"`
	Pool           PoolStats `json:"pool"`
	// Wedged reports degraded read-only mode after a durability failure
	// (see ErrWedged); WedgeReason carries the failure that caused it.
	Wedged      bool   `json:"wedged,omitempty"`
	WedgeReason string `json:"wedge_reason,omitempty"`
}

// entryRef locates a live entry: page, slot, and its accounting size.
type entryRef struct {
	pid  pageID
	slot uint16
	size uint32
}

// Shard is one independent store partition: its own WAL, segment
// files, buffer pool and index. Safe for concurrent use.
type Shard struct {
	dir       string
	pageSize  int
	segMax    int64
	walSegMax int64

	mu    sync.RWMutex // index + allocation state; RLock for Get
	wal   *WAL
	pool  *bufferPool
	index map[string]entryRef

	epoch         uint64
	activeSeg     uint32
	nextPageIdx   uint32
	tail          *frame
	tailID        pageID
	checkpointLSN uint64
	liveBytes     int64
	deadBytes     int64

	fmu   sync.Mutex // segment file handles (leaf lock)
	files map[uint32]*os.File

	compactFrac     float64
	compactMinBytes int64
	compacting      atomic.Bool
	closed          atomic.Bool

	wedgeMu  sync.Mutex
	wedgeErr error // sticky; non-nil = degraded read-only (see ErrWedged)

	statMu sync.Mutex
	stats  ShardStats
}

// OpenShard opens (or creates) the shard rooted at dir: reads the
// manifest, removes stray files from interrupted compactions, rebuilds
// the index from the segment pages, replays the WAL tail on top, and
// starts a fresh segment and WAL segment for new appends.
func OpenShard(dir string, opt Options) (*Shard, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta, err := readShardMeta(filepath.Join(dir, "META"))
	if err != nil {
		return nil, err
	}
	if meta.PageSize == 0 {
		meta.PageSize = opt.PageSize
	}
	s := &Shard{
		dir:             dir,
		pageSize:        meta.PageSize,
		segMax:          opt.SegmentBytes,
		walSegMax:       opt.WALSegmentBytes,
		index:           map[string]entryRef{},
		epoch:           meta.Epoch,
		checkpointLSN:   meta.CheckpointLSN,
		files:           map[uint32]*os.File{},
		compactFrac:     opt.CompactFraction,
		compactMinBytes: opt.CompactMinBytes,
	}
	s.pool = newBufferPool((*shardIO)(s), opt.PoolPages)
	if err := s.removeStraySegments(); err != nil {
		return nil, err
	}
	maxSeq, err := s.scanSegments()
	if err != nil {
		return nil, err
	}
	s.activeSeg = maxSeq + 1
	s.nextPageIdx = 0
	wal, err := OpenWAL(filepath.Join(dir, "wal"), s.walSegMax, func(rec Record) error {
		if rec.LSN <= s.checkpointLSN {
			return nil
		}
		switch rec.Op {
		case OpPut:
			return s.applyPutLocked(rec.Key, rec.Value)
		case OpDelete:
			return s.applyDeleteLocked(rec.Key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

func readShardMeta(path string) (shardMeta, error) {
	var m shardMeta
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return shardMeta{Version: shardMetaVersion}, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: corrupt META %s: %w", path, err)
	}
	if m.Version != shardMetaVersion {
		return m, fmt.Errorf("store: META %s version %d unsupported", path, m.Version)
	}
	return m, nil
}

// writeMeta atomically replaces the manifest (tmp + rename + dir sync).
func (s *Shard) writeMeta(epoch, checkpointLSN uint64) error {
	m := shardMeta{Version: shardMetaVersion, Epoch: epoch, CheckpointLSN: checkpointLSN, PageSize: s.pageSize}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "META.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "META")); err != nil {
		return err
	}
	return syncDir(s.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func segName(epoch uint64, seq uint32) string {
	return fmt.Sprintf("seg-%d-%08d.dat", epoch, seq)
}

// parseSegName inverts segName.
func parseSegName(name string) (epoch uint64, seq uint32, ok bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".dat") {
		return 0, 0, false
	}
	parts := strings.SplitN(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".dat"), "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	e, err1 := strconv.ParseUint(parts[0], 10, 64)
	q, err2 := strconv.ParseUint(parts[1], 10, 32)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return e, uint32(q), true
}

// removeStraySegments deletes segment files from other epochs — the
// leftovers of a compaction interrupted before or after its manifest
// swap.
func (s *Shard) removeStraySegments() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		epoch, _, ok := parseSegName(e.Name())
		if ok && epoch != s.epoch {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// segSeqs lists the current epoch's segment sequences, ascending.
// Callers must hold s.mu (the epoch moves under it during compaction).
func (s *Shard) segSeqs() ([]uint32, error) {
	return segSeqsOf(s.dir, s.epoch)
}

func segSeqsOf(dir string, epoch uint64) ([]uint32, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint32
	for _, e := range ents {
		ep, seq, ok := parseSegName(e.Name())
		if ok && ep == epoch {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanSegments rebuilds the index from the segment pages, in (segment,
// page, slot) order — which is append order, so the last occurrence of
// a key wins. An unreadable page ends that segment's scan (its entries,
// if any were lost to a torn writeback, are still in the WAL tail the
// caller replays next).
func (s *Shard) scanSegments() (maxSeq uint32, err error) {
	seqs, err := s.segSeqs()
	if err != nil {
		return 0, err
	}
	for _, seq := range seqs {
		if seq > maxSeq {
			maxSeq = seq
		}
		data, err := os.ReadFile(filepath.Join(s.dir, segName(s.epoch, seq)))
		if err != nil {
			return 0, err
		}
		off := 0
		for off+pageHeaderSize <= len(data) {
			span, herr := parsePageHeader(data[off:])
			if herr != nil {
				break
			}
			end := off + span*s.pageSize
			if end > len(data) {
				break
			}
			buf := data[off:end]
			if verifyPage(buf) != nil {
				break
			}
			pid := makePageID(seq, uint32(off/s.pageSize))
			nslots := int(readU16(buf[4:]))
			for slot := 0; slot < nslots; slot++ {
				key, val, tomb, perr := pageEntry(buf, slot)
				if perr != nil {
					return 0, fmt.Errorf("store: %s page %d: %w", segName(s.epoch, seq), off/s.pageSize, perr)
				}
				size := uint32(entrySize(len(key), len(val)))
				if tomb {
					s.dropIndexEntry(key)
					s.deadBytes += int64(size)
					continue
				}
				s.dropIndexEntry(key)
				s.index[key] = entryRef{pid: pid, slot: uint16(slot), size: size}
				s.liveBytes += int64(size)
			}
			off = end
		}
	}
	return maxSeq, nil
}

// dropIndexEntry moves key's current entry (if any) to the dead set.
func (s *Shard) dropIndexEntry(key string) {
	if old, ok := s.index[key]; ok {
		delete(s.index, key)
		s.liveBytes -= int64(old.size)
		s.deadBytes += int64(old.size)
	}
}

func readU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

// wedge records the first durability failure, moving the shard into
// sticky degraded read-only mode, and returns the canonical error. The
// WAL's own sticky failure mode backs this up at the log layer.
func (s *Shard) wedge(cause error) error {
	s.wedgeMu.Lock()
	defer s.wedgeMu.Unlock()
	if s.wedgeErr == nil {
		s.wedgeErr = fmt.Errorf("%w: %w", ErrWedged, cause)
	}
	return s.wedgeErr
}

// wedged returns the sticky degraded-mode error, or nil.
func (s *Shard) wedged() error {
	s.wedgeMu.Lock()
	defer s.wedgeMu.Unlock()
	return s.wedgeErr
}

// shardIO adapts the shard's segment files to the buffer pool.
type shardIO Shard

func (sio *shardIO) file(seq uint32) (*os.File, error) {
	s := (*Shard)(sio)
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if f, ok := s.files[seq]; ok {
		return f, nil
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.epoch, seq)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s.files[seq] = f
	return f, nil
}

func (sio *shardIO) ReadPage(id pageID) ([]byte, error) {
	s := (*Shard)(sio)
	f, err := sio.file(id.seg())
	if err != nil {
		return nil, err
	}
	buf := make([]byte, s.pageSize)
	if _, err := f.ReadAt(buf, int64(id.idx())*int64(s.pageSize)); err != nil {
		return nil, fmt.Errorf("store: read page %d/%d: %w", id.seg(), id.idx(), err)
	}
	span, err := parsePageHeader(buf)
	if err != nil {
		return nil, err
	}
	if span > 1 {
		full := make([]byte, span*s.pageSize)
		copy(full, buf)
		if _, err := f.ReadAt(full[s.pageSize:], (int64(id.idx())+1)*int64(s.pageSize)); err != nil {
			return nil, fmt.Errorf("store: read page %d/%d span %d: %w", id.seg(), id.idx(), span, err)
		}
		buf = full
	}
	if err := verifyPage(buf); err != nil {
		return nil, fmt.Errorf("store: page %d/%d: %w", id.seg(), id.idx(), err)
	}
	return buf, nil
}

func (sio *shardIO) WritePage(id pageID, buf []byte) error {
	s := (*Shard)(sio)
	f, err := sio.file(id.seg())
	if err != nil {
		return s.wedge(err)
	}
	// Patch the checksum so the durable image always self-verifies.
	putLE32(buf[12:], pageCRC(buf))
	n, ferr := fault.WriteLen("store.page.writeback", len(buf))
	if _, err := f.WriteAt(buf[:n], int64(id.idx())*int64(s.pageSize)); err != nil {
		ferr = err
	}
	if ferr != nil {
		// A failed (or torn) writeback leaves the on-disk page image
		// unknown while the pool may still evict the frame: the shard can
		// no longer promise the pages cover acknowledged data, so it
		// wedges. The page checksum makes a torn image detectable — a
		// reopen scan stops at it and falls back to the WAL tail.
		return s.wedge(fmt.Errorf("write page %d/%d: %w", id.seg(), id.idx(), ferr))
	}
	return nil
}

// allocPageLocked reserves span consecutive page indices, rolling to a
// new segment file when the active one is full.
func (s *Shard) allocPageLocked(span int) pageID {
	if s.nextPageIdx > 0 && (int64(s.nextPageIdx)+int64(span))*int64(s.pageSize) > s.segMax {
		s.activeSeg++
		s.nextPageIdx = 0
	}
	pid := makePageID(s.activeSeg, s.nextPageIdx)
	s.nextPageIdx += uint32(span)
	return pid
}

// sealTailLocked releases the pinned tail page; the next append
// allocates a fresh one. Sealed pages are never appended to again —
// the invariant that makes page order equal append order and lets a
// checkpointed page be immutable on disk forever after.
func (s *Shard) sealTailLocked() {
	if s.tail != nil {
		s.pool.unpin(s.tail, true)
		s.tail = nil
	}
}

// applyPutLocked places an entry into the pages and updates the index.
// Called with s.mu held, both on live puts (after the WAL append) and
// on WAL replay.
func (s *Shard) applyPutLocked(key string, val []byte) error {
	span := pageSpan(s.pageSize, len(key), len(val))
	need := entrySize(len(key), len(val))
	var pid pageID
	var slot int
	if span == 1 && s.tail != nil && s.tail.page.free() >= need {
		slot = s.tail.page.appendEntry(key, val, false)
		s.pool.markDirty(s.tail)
		pid = s.tailID
	} else {
		// A jumbo entry also seals the tail: page allocation order must
		// match append order for the rebuild scan to pick latest-wins.
		s.sealTailLocked()
		pid = s.allocPageLocked(span)
		p := newPage(s.pageSize, span)
		slot = p.appendEntry(key, val, false)
		fr, err := s.pool.install(pid, p, true)
		if err != nil {
			return err
		}
		if span == 1 {
			s.tail, s.tailID = fr, pid
		} else {
			s.pool.unpin(fr, true)
		}
	}
	s.dropIndexEntry(key)
	s.index[key] = entryRef{pid: pid, slot: uint16(slot), size: uint32(need)}
	s.liveBytes += int64(need)
	return nil
}

// applyDeleteLocked appends a tombstone (only if the key is live) and
// removes the index entry.
func (s *Shard) applyDeleteLocked(key string) error {
	if _, ok := s.index[key]; !ok {
		return nil
	}
	need := entrySize(len(key), 0)
	if s.tail == nil || s.tail.page.free() < need {
		s.sealTailLocked()
		pid := s.allocPageLocked(1)
		p := newPage(s.pageSize, 1)
		fr, err := s.pool.install(pid, p, true)
		if err != nil {
			return err
		}
		s.tail, s.tailID = fr, pid
	}
	s.tail.page.appendEntry(key, nil, true)
	s.pool.markDirty(s.tail)
	s.dropIndexEntry(key)
	// The tombstone itself is dead weight from birth.
	s.deadBytes += int64(need)
	return nil
}

// Put durably stores key → val: WAL append, page apply, group-commit
// fsync. When Put returns the entry survives any crash. A wedged shard
// (earlier durability failure) rejects the write immediately: it must
// never acknowledge durability it cannot deliver.
func (s *Shard) Put(key string, val []byte) error {
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d exceeds %d", len(key), maxKeyLen)
	}
	if err := s.wedged(); err != nil {
		return err
	}
	s.mu.Lock()
	lsn, err := s.wal.Append(OpPut, key, val)
	if err == nil {
		err = s.applyPutLocked(key, val)
	}
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, ErrBadRecord) {
			return err // client error, rejected before any write
		}
		return s.wedge(err)
	}
	s.statMu.Lock()
	s.stats.Puts++
	s.statMu.Unlock()
	if err := s.wal.Sync(lsn); err != nil {
		return s.wedge(err)
	}
	s.maybeCompactAsync()
	return nil
}

// Delete durably tombstones key. Like Put, a wedged shard rejects the
// write up front.
func (s *Shard) Delete(key string) error {
	if err := s.wedged(); err != nil {
		return err
	}
	s.mu.Lock()
	_, existed := s.index[key]
	var lsn uint64
	var err error
	if existed {
		lsn, err = s.wal.Append(OpDelete, key, nil)
		if err == nil {
			err = s.applyDeleteLocked(key)
		}
	}
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, ErrBadRecord) {
			return err
		}
		return s.wedge(err)
	}
	s.statMu.Lock()
	s.stats.Deletes++
	s.statMu.Unlock()
	if !existed {
		return nil
	}
	if err := s.wal.Sync(lsn); err != nil {
		return s.wedge(err)
	}
	s.maybeCompactAsync()
	return nil
}

// Get returns the stored value (a fresh copy) and whether it exists.
func (s *Shard) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statMu.Lock()
	s.stats.Gets++
	s.statMu.Unlock()
	ref, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	f, err := s.pool.fetch(ref.pid)
	if err != nil {
		return nil, false, err
	}
	defer s.pool.unpin(f, false)
	gotKey, val, tomb, err := pageEntry(f.page.buf, int(ref.slot))
	if err != nil {
		return nil, false, err
	}
	if gotKey != key || tomb {
		return nil, false, fmt.Errorf("store: index points at wrong entry for %q", key)
	}
	s.statMu.Lock()
	s.stats.Hits++
	s.statMu.Unlock()
	return val, true, nil
}

// Len returns the live entry count.
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Checkpoint makes the pages cover every acknowledged record: seals
// the tail, writes back all dirty pages, fsyncs the segments, swaps
// the manifest, and drops the now-redundant WAL prefix. A wedged shard
// refuses: advancing the checkpoint LSN past data whose durability is
// unknown would let a later reopen skip WAL records it still needs.
func (s *Shard) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Shard) checkpointLocked() error {
	if err := s.wedged(); err != nil {
		return err
	}
	lsn := s.wal.LastLSN()
	if err := s.wal.Sync(lsn); err != nil {
		return s.wedge(err)
	}
	s.sealTailLocked()
	if err := s.pool.flush(); err != nil {
		return s.wedge(err)
	}
	if err := s.syncSegments(); err != nil {
		return err // syncSegments already wedged
	}
	if err := s.writeMeta(s.epoch, lsn); err != nil {
		return err
	}
	s.checkpointLSN = lsn
	// Roll the log so the segment holding the now-redundant records is
	// inactive and can be dropped.
	if err := s.wal.Rotate(); err != nil {
		return s.wedge(err)
	}
	return s.wal.DropBefore(lsn)
}

func (s *Shard) syncSegments() error {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if err := fault.Do("store.seg.fsync"); err != nil {
		return s.wedge(err)
	}
	for _, f := range s.files {
		if err := f.Sync(); err != nil {
			return s.wedge(err)
		}
	}
	return nil
}

// maybeCompactAsync kicks a background compaction when the dead
// fraction crosses the threshold.
func (s *Shard) maybeCompactAsync() {
	s.mu.RLock()
	dead, live := s.deadBytes, s.liveBytes
	s.mu.RUnlock()
	total := dead + live
	if total < s.compactMinBytes || float64(dead) < s.compactFrac*float64(total) {
		return
	}
	if s.closed.Load() || s.wedged() != nil || !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		_ = s.Compact()
	}()
}

// Compact rewrites every live entry into a fresh segment epoch,
// reclaiming dead space, then atomically swaps the manifest. The shard
// is write-locked for the duration (stop-the-world; shards are small
// by design — the ring spreads load across many).
func (s *Shard) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil
	}
	if err := s.wedged(); err != nil {
		return err
	}
	// An injected compaction fault aborts before any rewrite: the old
	// epoch stays authoritative, nothing to clean up.
	if err := fault.Do("store.compact"); err != nil {
		return err
	}
	reclaimable := s.deadBytes
	// Order live entries by their current placement for sequential reads.
	type kv struct {
		key string
		ref entryRef
	}
	live := make([]kv, 0, len(s.index))
	for k, ref := range s.index {
		live = append(live, kv{k, ref})
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].ref.pid != live[j].ref.pid {
			return live[i].ref.pid < live[j].ref.pid
		}
		return live[i].ref.slot < live[j].ref.slot
	})

	newEpoch := s.epoch + 1
	var (
		newIndex  = make(map[string]entryRef, len(live))
		newLive   int64
		seq       uint32 = 1
		cur       *page
		curID     pageID
		out       *os.File
		w         *bufio.Writer
		fileBytes int64
		newFiles  []string
	)
	openSeg := func() error {
		name := segName(newEpoch, seq)
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		out, w, fileBytes = f, bufio.NewWriterSize(f, 1<<20), 0
		newFiles = append(newFiles, name)
		return nil
	}
	closeSeg := func() error {
		if out == nil {
			return nil
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if err := out.Sync(); err != nil {
			return err
		}
		return out.Close()
	}
	flushPage := func() error {
		if cur == nil {
			return nil
		}
		cur.seal()
		if _, err := w.Write(cur.buf); err != nil {
			return err
		}
		fileBytes += int64(len(cur.buf))
		cur = nil
		return nil
	}
	fail := func(err error) error {
		_ = closeSeg()
		for _, name := range newFiles {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
		return err
	}
	if err := openSeg(); err != nil {
		return err
	}
	for _, e := range live {
		fr, err := s.pool.fetch(e.ref.pid)
		if err != nil {
			return fail(err)
		}
		key, val, _, perr := pageEntry(fr.page.buf, int(e.ref.slot))
		s.pool.unpin(fr, false)
		if perr != nil {
			return fail(perr)
		}
		span := pageSpan(s.pageSize, len(key), len(val))
		need := entrySize(len(key), len(val))
		if cur != nil && (span > 1 || cur.free() < need) {
			if err := flushPage(); err != nil {
				return fail(err)
			}
		}
		if cur == nil {
			if fileBytes+int64(span*s.pageSize) > s.segMax && fileBytes > 0 {
				if err := closeSeg(); err != nil {
					return fail(err)
				}
				out = nil
				seq++
				if err := openSeg(); err != nil {
					return fail(err)
				}
			}
			cur = newPage(s.pageSize, span)
			curID = makePageID(seq, uint32(fileBytes/int64(s.pageSize)))
		}
		slot := cur.appendEntry(key, val, false)
		newIndex[key] = entryRef{pid: curID, slot: uint16(slot), size: uint32(need)}
		newLive += int64(need)
		if span > 1 {
			if err := flushPage(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flushPage(); err != nil {
		return fail(err)
	}
	if err := closeSeg(); err != nil {
		return fail(err)
	}
	// Every live entry (checkpointed or not) is now in the new epoch, so
	// the WAL prefix up to the last appended LSN is redundant.
	lsn := s.wal.LastLSN()
	if err := s.wal.Sync(lsn); err != nil {
		// The WAL's durability is now unknown; the abandoned new epoch is
		// cleaned up, but the shard must stop acknowledging writes.
		return fail(s.wedge(err))
	}
	if err := syncDir(s.dir); err != nil {
		return fail(err)
	}
	if err := s.writeMeta(newEpoch, lsn); err != nil {
		return fail(err)
	}
	// Manifest swapped: the new epoch is authoritative. Tear down the
	// old one.
	oldEpoch := s.epoch
	s.epoch = newEpoch
	s.checkpointLSN = lsn
	s.tail = nil
	s.pool.invalidate()
	s.fmu.Lock()
	for seq, f := range s.files {
		f.Close()
		delete(s.files, seq)
	}
	s.fmu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range ents {
			epoch, _, ok := parseSegName(e.Name())
			if ok && epoch == oldEpoch {
				_ = os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	s.index = newIndex
	s.liveBytes = newLive
	s.deadBytes = 0
	s.activeSeg = seq + 1
	s.nextPageIdx = 0
	if err := s.wal.DropBefore(lsn); err != nil {
		return err
	}
	s.statMu.Lock()
	s.stats.Compactions++
	s.stats.ReclaimedBytes += reclaimable
	s.statMu.Unlock()
	return nil
}

// Stats snapshots the shard counters.
func (s *Shard) Stats() ShardStats {
	s.statMu.Lock()
	st := s.stats
	s.statMu.Unlock()
	if err := s.wedged(); err != nil {
		st.Wedged = true
		st.WedgeReason = err.Error()
	}
	s.mu.RLock()
	st.Entries = len(s.index)
	st.LiveBytes = s.liveBytes
	st.DeadBytes = s.deadBytes
	epoch := s.epoch
	s.mu.RUnlock()
	st.WAL = s.wal.Stats()
	st.Pool = s.pool.snapshot()
	seqs, err := segSeqsOf(s.dir, epoch)
	if err == nil {
		st.Segments = len(seqs)
		for _, seq := range seqs {
			if fi, err := os.Stat(filepath.Join(s.dir, segName(epoch, seq))); err == nil {
				st.DiskBytes += fi.Size()
			}
		}
	}
	return st
}

// Close checkpoints and releases every file handle. The shard must not
// be used afterwards. A wedged shard skips the checkpoint — it must not
// advance the manifest past data of unknown durability — and only
// releases its handles; the reopen replays the WAL back to the last
// trustworthy state.
func (s *Shard) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var cerr error
	if s.wedged() == nil {
		cerr = s.checkpointLocked()
	}
	werr := s.wal.Close()
	s.fmu.Lock()
	for seq, f := range s.files {
		if err := f.Close(); err != nil && cerr == nil {
			cerr = err
		}
		delete(s.files, seq)
	}
	s.fmu.Unlock()
	if cerr != nil {
		return cerr
	}
	return werr
}
