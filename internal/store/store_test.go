package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// smallOpts keeps pages/segments tiny so tests exercise rotation,
// spanning pages and eviction without megabytes of writes.
func smallOpts(dir string) Options {
	return Options{
		Dir:             dir,
		Shards:          2,
		PoolPages:       16,
		PageSize:        512,
		SegmentBytes:    8 << 10,
		WALSegmentBytes: 8 << 10,
		CompactMinBytes: 1 << 30, // no background compaction unless asked
	}
}

func val(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 40)
}

func TestStorePutGetDeleteOverwrite(t *testing.T) {
	st, err := Open(smallOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := st.Put(fmt.Sprintf("key-%03d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != n {
		t.Fatalf("len %d, want %d", st.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok, err := st.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Overwrite half, delete a quarter.
	for i := 0; i < n/2; i++ {
		if err := st.Put(fmt.Sprintf("key-%03d", i), val(i+1000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/4; i++ {
		if err := st.Delete(fmt.Sprintf("key-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != n-n/4 {
		t.Fatalf("len %d after deletes, want %d", st.Len(), n-n/4)
	}
	for i := 0; i < n; i++ {
		v, ok, err := st.Get(fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case i < n/4:
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
		case i < n/2:
			if !ok || !bytes.Equal(v, val(i+1000)) {
				t.Fatalf("overwritten key %d wrong", i)
			}
		default:
			if !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("key %d wrong", i)
			}
		}
	}
	stats := st.Stats()
	if stats.DeadBytes == 0 {
		t.Fatal("overwrites produced no dead bytes")
	}
	if stats.Entries != n-n/4 {
		t.Fatalf("stats entries %d, want %d", stats.Entries, n-n/4)
	}
}

// TestStoreSurvivesRestart is the core durability property: everything
// acknowledged before a clean close — and everything acknowledged
// before an unclean abandon (no Close, dirty pages lost, WAL intact) —
// is there after reopening.
func TestStoreSurvivesRestart(t *testing.T) {
	for _, clean := range []bool{true, false} {
		t.Run(map[bool]string{true: "clean-close", false: "crash"}[clean], func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(smallOpts(dir))
			if err != nil {
				t.Fatal(err)
			}
			const n = 60
			for i := 0; i < n; i++ {
				if err := st.Put(fmt.Sprintf("key-%03d", i), val(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Delete("key-007"); err != nil {
				t.Fatal(err)
			}
			if clean {
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
			}
			// Unclean: simply abandon the handles. Page writebacks that
			// never happened are re-derived from the WAL on open.
			st2, err := Open(smallOpts(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if st2.Len() != n-1 {
				t.Fatalf("reopened len %d, want %d", st2.Len(), n-1)
			}
			for i := 0; i < n; i++ {
				v, ok, err := st2.Get(fmt.Sprintf("key-%03d", i))
				if err != nil {
					t.Fatal(err)
				}
				if i == 7 {
					if ok {
						t.Fatal("deleted key resurrected")
					}
					continue
				}
				if !ok || !bytes.Equal(v, val(i)) {
					t.Fatalf("key %d lost or wrong after restart", i)
				}
			}
			if !clean {
				// The crash path must have replayed from the WAL.
				var replayed uint64
				for _, sh := range st2.Stats().Shards {
					replayed += sh.WAL.ReplayRecords
				}
				if replayed == 0 {
					t.Fatal("crash reopen replayed nothing")
				}
			}
		})
	}
}

// TestStoreCheckpointTrimsWAL: after Flush, reopening replays nothing
// (pages carry everything) yet all data is present.
func TestStoreCheckpointTrimsWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := st.Put(fmt.Sprintf("key-%03d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Open(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var replayed uint64
	for _, sh := range st2.Stats().Shards {
		replayed += sh.WAL.ReplayRecords
	}
	if replayed != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", replayed)
	}
	for i := 0; i < 40; i++ {
		if _, ok, err := st2.Get(fmt.Sprintf("key-%03d", i)); !ok || err != nil {
			t.Fatalf("key %d missing after checkpointed reopen", i)
		}
	}
}

// TestShardTornWriteRecovery runs the truncation harness end to end at
// the shard level: commit K entries, truncate the WAL at every byte
// offset of the last record, and require the reopened shard to hold
// exactly the K-1 committed entries.
func TestShardTornWriteRecovery(t *testing.T) {
	const committed = 6
	master := t.TempDir()
	opt := smallOpts("")
	sh, err := OpenShard(master, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < committed; i++ {
		if err := sh.Put(fmt.Sprintf("key-%d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close: pages stay dirty in memory, the WAL is the
	// only durable copy — exactly the crash shape the harness wants.
	walDir := filepath.Join(master, "wal")
	seqs, err := walSegments(walDir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("wal segments: %v %v", seqs, err)
	}
	active := seqs[len(seqs)-1]
	full, err := os.ReadFile(walPath(walDir, active))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := walHeaderSize
	for off := walHeaderSize; off < len(full); {
		_, n, derr := DecodeRecord(full[off:])
		if derr != nil {
			t.Fatalf("walk: %v", derr)
		}
		lastStart = off
		off += n
	}
	for cut := lastStart; cut < len(full); cut++ {
		dir := t.TempDir()
		copyTree(t, master, dir)
		if err := os.WriteFile(walPath(filepath.Join(dir, "wal"), active), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		sh2, err := OpenShard(dir, opt)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if sh2.Len() != committed-1 {
			t.Fatalf("cut %d: %d entries, want %d", cut, sh2.Len(), committed-1)
		}
		for i := 0; i < committed-1; i++ {
			v, ok, err := sh2.Get(fmt.Sprintf("key-%d", i))
			if err != nil || !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("cut %d: entry %d lost (ok=%v err=%v)", cut, i, ok, err)
			}
		}
		if _, ok, _ := sh2.Get(fmt.Sprintf("key-%d", committed-1)); ok {
			t.Fatalf("cut %d: torn entry visible", cut)
		}
		if err := sh2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardJumboValues stores entries far larger than a page and gets
// them back, across a restart.
func TestShardJumboValues(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts("")
	sh, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("jumbo!"), 3000) // ~18 KiB on 512 B pages
	if err := sh.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if err := sh.Put("small-after", val(1)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Put("big", append(big, 'x')); err != nil { // jumbo overwrite
		t.Fatal(err)
	}
	v, ok, err := sh.Get("big")
	if err != nil || !ok || !bytes.Equal(v, append(big, 'x')) {
		t.Fatalf("jumbo get: ok=%v err=%v len=%d", ok, err, len(v))
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	sh2, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	v, ok, err = sh2.Get("big")
	if err != nil || !ok || !bytes.Equal(v, append(big, 'x')) {
		t.Fatalf("jumbo get after restart: ok=%v err=%v", ok, err)
	}
	if v, ok, _ := sh2.Get("small-after"); !ok || !bytes.Equal(v, val(1)) {
		t.Fatal("small entry next to jumbo lost")
	}
}

// TestShardEvictionWriteback forces the pool far over capacity and
// checks reads come back through disk.
func TestShardEvictionWriteback(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts("")
	opt.PoolPages = 4
	sh, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := sh.Put(fmt.Sprintf("key-%04d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := sh.Get(fmt.Sprintf("key-%04d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d through tiny pool: ok=%v err=%v", i, ok, err)
		}
	}
	ps := sh.Stats().Pool
	if ps.Evictions == 0 || ps.Writebacks == 0 || ps.Misses == 0 {
		t.Fatalf("tiny pool saw no churn: %+v", ps)
	}
	if ps.Pages > 2*ps.Capacity {
		t.Fatalf("pool grew unbounded: %+v", ps)
	}
}

// TestShardCompaction reclaims overwritten space and survives a
// restart afterwards.
func TestShardCompaction(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts("")
	sh, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i++ {
			if err := sh.Put(fmt.Sprintf("key-%03d", i), val(1000*round+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sh.Delete("key-000"); err != nil {
		t.Fatal(err)
	}
	before := sh.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("no dead bytes before compaction")
	}
	if err := sh.Compact(); err != nil {
		t.Fatal(err)
	}
	after := sh.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("dead bytes %d after compaction", after.DeadBytes)
	}
	if after.Compactions != 1 || after.ReclaimedBytes == 0 {
		t.Fatalf("compaction not recorded: %+v", after)
	}
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction grew disk: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	check := func(sh *Shard, label string) {
		t.Helper()
		if sh.Len() != n-1 {
			t.Fatalf("%s: len %d, want %d", label, sh.Len(), n-1)
		}
		for i := 1; i < n; i++ {
			v, ok, err := sh.Get(fmt.Sprintf("key-%03d", i))
			if err != nil || !ok || !bytes.Equal(v, val(4000+i)) {
				t.Fatalf("%s: key %d wrong after compaction (ok=%v err=%v)", label, i, ok, err)
			}
		}
	}
	check(sh, "live")
	// Writes continue fine after compaction.
	if err := sh.Put("post-compact", val(7)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	sh2, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if v, ok, _ := sh2.Get("post-compact"); !ok || !bytes.Equal(v, val(7)) {
		t.Fatal("post-compaction write lost")
	}
	if err := sh2.Delete("post-compact"); err != nil {
		t.Fatal(err)
	}
	check(sh2, "reopened")
}

// TestShardBackgroundCompaction: crossing the dead-fraction threshold
// kicks compaction without an explicit call.
func TestShardBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts("")
	opt.CompactMinBytes = 4 << 10
	opt.CompactFraction = 0.5
	sh, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			if err := sh.Put(fmt.Sprintf("key-%02d", i), val(round*100+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The trigger is async; poll briefly.
	ok := false
	for i := 0; i < 200 && !ok; i++ {
		ok = sh.Stats().Compactions > 0
	}
	if !ok {
		// Force the race to settle: one more put then a direct check.
		if err := sh.Put("kick", val(1)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000 && sh.Stats().Compactions == 0; i++ {
		}
	}
	if sh.Stats().Compactions == 0 {
		t.Fatal("background compaction never ran")
	}
}

func TestStoreManifestPinsGeometry(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	bad := smallOpts(dir)
	bad.Shards = 5
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("reshard silently accepted: %v", err)
	}
	bad = smallOpts(dir)
	bad.PageSize = 4096
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "page size") {
		t.Fatalf("page-size change silently accepted: %v", err)
	}
}

// TestStoreReopenAdoptsManifest: a store created with non-default
// geometry must reopen with zero-value options — the zero values adopt
// the persisted shard count and page size instead of being defaulted
// into a mismatch error.
func TestStoreReopenAdoptsManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 8, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		if err := st.Put(fmt.Sprintf("key-%02d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with nothing but the directory — the default-flags restart.
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("zero-value reopen of a shards=8 store: %v", err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if len(stats.Shards) != 8 {
		t.Fatalf("adopted %d shards, want 8", len(stats.Shards))
	}
	if st2.Len() != n {
		t.Fatalf("reopened len %d, want %d", st2.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok, err := st2.Get(fmt.Sprintf("key-%02d", i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d wrong after adopted reopen: ok=%v err=%v", i, ok, err)
		}
	}
	// New writes land on the adopted layout and survive another
	// zero-value reopen.
	if err := st2.Put("post-adopt", val(99)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if v, ok, _ := st3.Get("post-adopt"); !ok || !bytes.Equal(v, val(99)) {
		t.Fatal("write on adopted layout lost")
	}
	// Explicit conflicts still refuse loudly.
	if _, err := Open(Options{Dir: dir, Shards: 4}); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("explicit shard conflict accepted: %v", err)
	}
	if _, err := Open(Options{Dir: dir, PageSize: 8192}); err == nil || !strings.Contains(err.Error(), "page size") {
		t.Fatalf("explicit page-size conflict accepted: %v", err)
	}
}

// TestStorePoolPagesCap: the configured total frame cap must never be
// silently multiplied. Before the fix, PoolPages < Shards split to 0
// per shard and re-defaulted to 1024 frames per shard.
func TestStorePoolPagesCap(t *testing.T) {
	for _, tc := range []struct {
		shards, poolPages int
	}{
		{1, 2}, {2, 2}, {4, 2}, {8, 2}, // cap below shard count
		{2, 64}, {4, 64}, // clean splits
		{4, 1024}, {8, 1024}, // default-scale
	} {
		t.Run(fmt.Sprintf("shards=%d,pool=%d", tc.shards, tc.poolPages), func(t *testing.T) {
			opt := smallOpts(t.TempDir())
			opt.Shards = tc.shards
			opt.PoolPages = tc.poolPages
			st, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			total := 0
			for _, sh := range st.Stats().Shards {
				total += sh.Pool.Capacity
			}
			// The pool floors each shard at 4 frames (pin-safety), so the
			// hard invariant is max(PoolPages, 4*Shards) — never the old
			// failure mode of 1024 frames per shard.
			limit := tc.poolPages
			if min := 4 * tc.shards; min > limit {
				limit = min
			}
			if total > limit {
				t.Fatalf("total pool capacity %d exceeds cap %d", total, limit)
			}
			if tc.poolPages >= 4*tc.shards && total != tc.poolPages {
				t.Fatalf("total pool capacity %d, want the configured %d", total, tc.poolPages)
			}
		})
	}
}

func TestRingDeterministicAndSpread(t *testing.T) {
	r1, r2 := NewRing(4), NewRing(4)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("scenario-key-%d", i)
		a, b := r1.Owner(key), r2.Owner(key)
		if a != b {
			t.Fatalf("ring not deterministic for %q: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	for s, c := range counts {
		if c < 400 {
			t.Fatalf("shard %d starved: %v", s, counts)
		}
	}
	if NewRing(1).Owner("anything") != 0 {
		t.Fatal("single-shard ring must own everything")
	}
}

func TestStorePeerWarmFill(t *testing.T) {
	primary, err := Open(smallOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 20; i++ {
		if err := primary.Put(fmt.Sprintf("key-%02d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	opt := smallOpts(t.TempDir())
	opt.Peer = StorePeer{S: primary}
	replica, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	// Miss locally, warm-fill from the peer.
	v, ok, err := replica.Get("key-03")
	if err != nil || !ok || !bytes.Equal(v, val(3)) {
		t.Fatalf("warm fill failed: ok=%v err=%v", ok, err)
	}
	st := replica.Stats()
	if st.PeerFills != 1 {
		t.Fatalf("peer fills %d, want 1", st.PeerFills)
	}
	// Second read is local (the fill was durable).
	if _, ok, _ = replica.GetLocal("key-03"); !ok {
		t.Fatal("warm fill did not persist locally")
	}
	// A key nobody has counts a peer miss.
	if _, ok, _ := replica.Get("nope"); ok {
		t.Fatal("phantom key")
	}
	if st := replica.Stats(); st.PeerMisses != 1 {
		t.Fatalf("peer misses %d, want 1", st.PeerMisses)
	}
}

// TestStoreTornPageIgnored: external corruption of a checkpointed page
// must not brick the store — the scan skips the bad page and the rest
// of the shard stays readable.
func TestStoreTornPageIgnored(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts("")
	sh, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := sh.Put(fmt.Sprintf("key-%02d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte in the middle of the first segment file.
	seqs, err := (&Shard{dir: dir, epoch: 0}).segSeqs()
	if err != nil || len(seqs) == 0 {
		t.Fatalf("segments: %v %v", seqs, err)
	}
	path := filepath.Join(dir, segName(0, seqs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sh2, err := OpenShard(dir, opt)
	if err != nil {
		t.Fatalf("open with corrupt page: %v", err)
	}
	defer sh2.Close()
	if sh2.Len() >= 30 {
		t.Fatalf("corruption invisible: %d entries", sh2.Len())
	}
	// Still writable and readable.
	if err := sh2.Put("fresh", val(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sh2.Get("fresh"); !ok || err != nil {
		t.Fatalf("shard unusable after corruption: ok=%v err=%v", ok, err)
	}
}

// TestStoreConcurrentAccess hammers the store from many goroutines so
// the race detector sees Put/Get/Delete/Stats/compaction interleaved.
func TestStoreConcurrentAccess(t *testing.T) {
	opt := smallOpts(t.TempDir())
	opt.CompactMinBytes = 8 << 10 // let background compaction join in
	opt.CompactFraction = 0.4
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const workers, each = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i%20)
				if err := st.Put(key, val(g*1000+i)); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := st.Get(key); err != nil || !ok || len(v) == 0 {
					t.Errorf("get %s: ok=%v err=%v", key, ok, err)
					return
				}
				if i%10 == 9 {
					if err := st.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
				_ = st.Stats()
			}
		}(g)
	}
	wg.Wait()
}
