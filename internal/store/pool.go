package store

import (
	"container/list"
	"fmt"
	"sync"
)

// pageID addresses a page inside a shard: segment sequence in the high
// 32 bits, page index (file offset / pageSize) in the low 32.
type pageID uint64

func makePageID(seg uint32, idx uint32) pageID { return pageID(seg)<<32 | pageID(idx) }
func (id pageID) seg() uint32                  { return uint32(id >> 32) }
func (id pageID) idx() uint32                  { return uint32(id) }

// pageIO loads and stores page images — implemented by the shard over
// its segment files. ReadPage returns the full span*pageSize image.
type pageIO interface {
	ReadPage(id pageID) ([]byte, error)
	WritePage(id pageID, buf []byte) error
}

// PoolStats counts buffer-pool outcomes.
type PoolStats struct {
	// Hits counts fetches served from a resident frame.
	Hits uint64 `json:"hits"`
	// Misses counts fetches that had to read the page from disk.
	Misses uint64 `json:"misses"`
	// Evictions counts frames dropped to make room.
	Evictions uint64 `json:"evictions"`
	// Writebacks counts dirty frames written to disk on eviction or
	// flush.
	Writebacks uint64 `json:"writebacks"`
	// Pages is the resident frame count.
	Pages int `json:"pages"`
	// Capacity is the configured frame cap.
	Capacity int `json:"capacity"`
}

// frame is one resident page.
type frame struct {
	id    pageID
	page  *page
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list while unpinned
}

// bufferPool is a fixed-capacity page cache with pin/unpin semantics:
// pinned frames are never evicted; unpinned frames queue in LRU order
// and dirty ones are written back before eviction. If every frame is
// pinned the pool admits the newcomer over capacity rather than
// deadlocking (visible as Pages > Capacity in the stats).
type bufferPool struct {
	io  pageIO
	cap int

	mu     sync.Mutex
	frames map[pageID]*frame
	lru    *list.List // front = most recently unpinned
	stats  PoolStats
}

func newBufferPool(io pageIO, capacity int) *bufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &bufferPool{
		io:     io,
		cap:    capacity,
		frames: map[pageID]*frame{},
		lru:    list.New(),
	}
}

// fetch pins the page, reading it from disk on a miss.
func (bp *bufferPool) fetch(id pageID) (*frame, error) {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		bp.pinLocked(f)
		bp.stats.Hits++
		bp.mu.Unlock()
		return f, nil
	}
	bp.stats.Misses++
	bp.mu.Unlock()
	// Read outside the lock: a slow disk read must not serialize hits.
	// Two concurrent misses on one page may both read; the second loser
	// adopts the winner's frame below.
	buf, err := bp.io.ReadPage(id)
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.pinLocked(f)
		return f, nil
	}
	if err := bp.makeRoomLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, page: &page{buf: buf}, pins: 1}
	bp.frames[id] = f
	bp.stats.Pages = len(bp.frames)
	return f, nil
}

// install pins a caller-built page (a fresh tail page) without a disk
// read.
func (bp *bufferPool) install(id pageID, p *page, dirty bool) (*frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if _, ok := bp.frames[id]; ok {
		return nil, fmt.Errorf("store: page %d/%d already resident", id.seg(), id.idx())
	}
	if err := bp.makeRoomLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, page: p, pins: 1, dirty: dirty}
	bp.frames[id] = f
	bp.stats.Pages = len(bp.frames)
	return f, nil
}

func (bp *bufferPool) pinLocked(f *frame) {
	if f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
}

// markDirty flags a (pinned) frame whose page bytes were appended to
// in place — the tail-page fast path.
func (bp *bufferPool) markDirty(f *frame) {
	bp.mu.Lock()
	f.dirty = true
	bp.mu.Unlock()
}

// unpin releases one pin; dirty marks the frame as needing writeback.
func (bp *bufferPool) unpin(f *frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		f.elem = bp.lru.PushFront(f)
	}
}

// makeRoomLocked evicts LRU unpinned frames until under capacity.
func (bp *bufferPool) makeRoomLocked() error {
	for len(bp.frames) >= bp.cap {
		el := bp.lru.Back()
		if el == nil {
			return nil // everything pinned: admit over capacity
		}
		f := el.Value.(*frame)
		if f.dirty {
			if err := bp.io.WritePage(f.id, f.page.buf); err != nil {
				return err
			}
			f.dirty = false
			bp.stats.Writebacks++
		}
		bp.lru.Remove(el)
		delete(bp.frames, f.id)
		bp.stats.Evictions++
	}
	bp.stats.Pages = len(bp.frames)
	return nil
}

// flush writes back every dirty frame (pinned or not) without evicting.
func (bp *bufferPool) flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.io.WritePage(f.id, f.page.buf); err != nil {
			return err
		}
		f.dirty = false
		bp.stats.Writebacks++
	}
	return nil
}

// invalidate drops every frame — used when compaction replaces the
// segment files wholesale. Dirty frames are discarded by design: the
// caller has already rewritten the live data.
func (bp *bufferPool) invalidate() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = map[pageID]*frame{}
	bp.lru.Init()
	bp.stats.Pages = 0
}

// snapshot returns the counters.
func (bp *bufferPool) snapshot() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := bp.stats
	s.Pages = len(bp.frames)
	s.Capacity = bp.cap
	return s
}
