package store

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Op: OpPut, LSN: 1, Key: "k", Value: []byte("v")},
		{Op: OpPut, LSN: 1<<63 + 7, Key: "", Value: nil},
		{Op: OpPut, LSN: 42, Key: "k2", Value: bytes.Repeat([]byte{0xAB}, 100_000)},
		{Op: OpDelete, LSN: 3, Key: "gone", Value: nil},
	}
	for i, rec := range cases {
		b, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("case %d: append: %v", i, err)
		}
		got, n, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(b))
		}
		if got.Op != rec.Op || got.LSN != rec.LSN || got.Key != rec.Key || !bytes.Equal(got.Value, rec.Value) {
			t.Fatalf("case %d: round trip mismatch: %+v != %+v", i, got, rec)
		}
	}
}

func TestRecordRejectsBadInputs(t *testing.T) {
	if _, err := AppendRecord(nil, Record{Op: 99, Key: "k"}); err == nil {
		t.Fatal("bad op accepted")
	}
	good, err := AppendRecord(nil, Record{Op: OpPut, LSN: 1, Key: "k", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := DecodeRecord(bad); err == nil {
		t.Fatal("corrupted record decoded")
	}
	// Every strict prefix is torn, never panics.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeRecord(good[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded", n)
		}
	}
}

// FuzzWALRecord round-trips arbitrary records through the wire
// encoding and checks that arbitrary byte soup never panics the
// decoder.
func FuzzWALRecord(f *testing.F) {
	f.Add(uint8(OpPut), uint64(1), "key", []byte("value"))
	f.Add(uint8(OpDelete), uint64(99), "gone", []byte(nil))
	f.Add(uint8(7), uint64(0), "", []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, op uint8, lsn uint64, key string, value []byte) {
		rec := Record{Op: op, LSN: lsn, Key: key, Value: value}
		if op == OpDelete {
			rec.Value = nil
		}
		b, err := AppendRecord(nil, rec)
		if err != nil {
			if op == OpPut || op == OpDelete {
				if len(key) <= maxKeyLen && recFixedSize+len(key)+len(rec.Value) <= maxRecordPayload {
					t.Fatalf("valid record rejected: %v", err)
				}
			}
			return
		}
		got, n, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode of freshly encoded record: %v", err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		if got.Op != rec.Op || got.LSN != rec.LSN || got.Key != rec.Key || !bytes.Equal(got.Value, rec.Value) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
		}
		// Decoding the raw bytes shifted by one must not panic (error is
		// fine).
		if len(b) > 1 {
			_, _, _ = DecodeRecord(b[1:])
		}
	})
}

func collectWAL(t *testing.T, dir string) (*WAL, []Record) {
	t.Helper()
	var recs []Record
	w, err := OpenWAL(dir, 0, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", dir, err)
	}
	return w, recs
}

func TestWALAppendSyncReplay(t *testing.T) {
	dir := t.TempDir()
	w, recs := collectWAL(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	want := []Record{
		{Op: OpPut, LSN: 1, Key: "a", Value: []byte("1")},
		{Op: OpPut, LSN: 2, Key: "b", Value: []byte("2")},
		{Op: OpDelete, LSN: 3, Key: "a"},
	}
	for _, r := range want {
		lsn, err := w.Append(r.Op, r.Key, r.Value)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != r.LSN {
			t.Fatalf("lsn %d, want %d", lsn, r.LSN)
		}
	}
	if err := w.Sync(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, recs := collectWAL(t, dir)
	defer w2.Close()
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("replayed %+v, want %+v", recs, want)
	}
	// LSNs continue where the log left off.
	lsn, err := w2.Append(OpPut, "c", []byte("3"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-replay lsn %d, want 4", lsn)
	}
}

func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, _ := collectWAL(t, dir)
	defer w.Close()
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := w.Append(OpPut, fmt.Sprintf("k-%d-%d", g, i), []byte("v"))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Sync(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends %d, want %d", st.Appends, writers*each)
	}
	if st.Syncs != writers*each {
		t.Fatalf("syncs %d, want %d", st.Syncs, writers*each)
	}
	if st.Fsyncs > st.Syncs {
		t.Fatalf("fsyncs %d exceed syncs %d", st.Fsyncs, st.Syncs)
	}
	t.Logf("group commit: %d syncs served by %d fsyncs", st.Syncs, st.Fsyncs)
}

func TestWALRotationAndDrop(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 256, nil) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 50; i++ {
		last, err = w.Append(OpPut, fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, 32))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(last); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations, got %+v", st)
	}
	before, _ := walSegments(dir)
	if err := w.DropBefore(last); err != nil {
		t.Fatal(err)
	}
	after, _ := walSegments(dir)
	if len(after) != 1 {
		t.Fatalf("DropBefore left %d segments (from %d), want 1 (the active one)", len(after), len(before))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything still replayable was dropped as redundant; the log is
	// logically empty.
	w2, recs := collectWAL(t, dir)
	defer w2.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records after full drop", len(recs))
	}
}

// TestWALTornWriteRecovery is the crash-recovery truncation harness:
// commit K records, then simulate a crash mid-append by truncating the
// log at EVERY byte offset of the last record. Replay must recover
// exactly the K-1 fully-committed records, truncate the torn tail, and
// leave the log appendable.
func TestWALTornWriteRecovery(t *testing.T) {
	const committed = 5
	master := t.TempDir()
	w, _ := collectWAL(t, master)
	var want []Record
	for i := 0; i < committed; i++ {
		r := Record{Op: OpPut, LSN: uint64(i + 1), Key: fmt.Sprintf("key-%d", i), Value: bytes.Repeat([]byte{byte(i + 1)}, 20+i*7)}
		if _, err := w.Append(r.Op, r.Key, r.Value); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if err := w.Sync(uint64(committed)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := walSegments(master)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("want 1 wal segment, got %v (%v)", seqs, err)
	}
	segPath := walPath(master, seqs[0])
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the last record's start offset by walking the log.
	lastStart := walHeaderSize
	off := walHeaderSize
	for off < len(full) {
		_, n, err := DecodeRecord(full[off:])
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		lastStart = off
		off += n
	}
	for cut := lastStart; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(walPath(dir, seqs[0]), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []Record
		w2, err := OpenWAL(dir, 0, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if !reflect.DeepEqual(recs, want[:committed-1]) {
			t.Fatalf("cut %d: recovered %d records, want the %d committed", cut, len(recs), committed-1)
		}
		// The torn tail was physically truncated.
		if fi, err := os.Stat(walPath(dir, seqs[0])); err != nil || fi.Size() != int64(lastStart) {
			t.Fatalf("cut %d: file not truncated to %d: %v %v", cut, lastStart, fi.Size(), err)
		}
		// The log stays appendable after recovery.
		if _, err := w2.Append(OpPut, "post-recovery", []byte("x")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Sanity: the untouched log replays all K records.
	w3, recs := collectWAL(t, master)
	defer w3.Close()
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("full log replayed %d records, want %d", len(recs), committed)
	}
}
