package store

import (
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// EncodeKeyPath renders a store key as a URL-path-safe segment for the
// replica fetch endpoint (/v1/store/{key}). Keys are arbitrary bytes
// (content addresses), so the encoding is unpadded url-safe base64 —
// never '/', '%', or other characters a proxy might re-escape.
func EncodeKeyPath(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key))
}

// DecodeKeyPath inverts EncodeKeyPath.
func DecodeKeyPath(seg string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(seg)
	if err != nil {
		return "", fmt.Errorf("store: bad key path %q: %w", seg, err)
	}
	return string(b), nil
}

// PeerStats snapshots one peer's health accounting — the /v1/stats
// surface that makes a dead or flapping replica visible from its
// neighbours.
type PeerStats struct {
	// URL is the peer's base URL as configured.
	URL string `json:"url"`
	// Fetches counts requests actually sent (skips excluded).
	Fetches uint64 `json:"fetches"`
	// Hits counts 200 responses; Misses counts definitive 404s (the
	// peer is healthy, it just doesn't have the key).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Errors counts transport failures, timeouts and non-200/404
	// statuses (each failed attempt counts once).
	Errors uint64 `json:"errors"`
	// Trips counts closed→open breaker transitions; Probes counts
	// half-open trial requests after the probe interval elapsed; Skips
	// counts fetches suppressed while the breaker was open.
	Trips  uint64 `json:"trips"`
	Probes uint64 `json:"probes"`
	Skips  uint64 `json:"skips"`
	// Tripped reports whether the breaker is currently open, and
	// ConsecutiveFailures the current failure run feeding it.
	Tripped             bool `json:"tripped"`
	ConsecutiveFailures int  `json:"consecutive_failures"`
}

// PeerHealth is implemented by peer fillers that keep per-peer health
// accounting; Store.Stats folds it into the store snapshot.
type PeerHealth interface {
	PeerStats() []PeerStats
}

// HTTPPeerOptions tunes an HTTPPeer. The zero value gets defaults.
type HTTPPeerOptions struct {
	// Timeout bounds one request, connect to body read (default 2s).
	Timeout time.Duration
	// Attempts is the per-peer attempt budget per fetch (default 2:
	// one try plus one retry). A definitive 404 is never retried.
	Attempts int
	// Backoff is the base delay before a retry, doubled per attempt
	// with up to 50% random jitter (default 20ms).
	Backoff time.Duration
	// TripAfter opens the per-peer breaker after this many consecutive
	// failed fetches (default 3); while open, the peer is skipped so a
	// dead replica stops eating the timeout budget.
	TripAfter int
	// ProbeAfter is the open→half-open interval: after it elapses one
	// probe request is allowed through; success closes the breaker,
	// failure re-arms it (default 5s).
	ProbeAfter time.Duration
	// Client overrides the HTTP client (default: a dedicated client;
	// the per-request timeout still applies).
	Client *http.Client
}

func (o HTTPPeerOptions) withDefaults() HTTPPeerOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 20 * time.Millisecond
	}
	if o.TripAfter <= 0 {
		o.TripAfter = 3
	}
	if o.ProbeAfter <= 0 {
		o.ProbeAfter = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// httpPeer is one replica endpoint plus its breaker state.
type httpPeer struct {
	base string // normalized base URL, no trailing slash

	mu        sync.Mutex
	stats     PeerStats
	consec    int
	tripped   bool
	nextProbe time.Time
}

// HTTPPeer fetches missing keys from a fleet of replica servers over
// HTTP — the networked PeerFiller. Each fetch walks the peers in
// configured order with a per-request timeout and bounded jittered
// retry; any failure degrades to a miss (the caller computes), never an
// error. A peer that keeps failing trips a breaker and is skipped until
// a half-open probe succeeds. Safe for concurrent use.
type HTTPPeer struct {
	opt   HTTPPeerOptions
	peers []*httpPeer
	now   func() time.Time // test seam
}

// NewHTTPPeer builds the filler for the given peer base URLs (e.g.
// "http://replica-2:8080"); scheme-less entries get "http://". Empty
// entries are dropped; nil is returned when none remain, so callers can
// pass a possibly-empty list straight through.
func NewHTTPPeer(baseURLs []string, opt HTTPPeerOptions) *HTTPPeer {
	p := &HTTPPeer{opt: opt.withDefaults(), now: time.Now}
	for _, u := range baseURLs {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimRight(u, "/")
		p.peers = append(p.peers, &httpPeer{base: u, stats: PeerStats{URL: u}})
	}
	if len(p.peers) == 0 {
		return nil
	}
	return p
}

// FetchPeer implements PeerFiller: first peer hit wins. A 404 moves on
// to the next peer immediately; transport failures retry with backoff
// within the attempt budget, then move on. All outcomes are counted.
func (p *HTTPPeer) FetchPeer(key string) ([]byte, bool) {
	path := "/v1/store/" + EncodeKeyPath(key)
	for _, peer := range p.peers {
		probe, skip := p.admit(peer)
		if skip {
			continue
		}
		attempts := p.opt.Attempts
		if probe {
			// Half-open: risk exactly one request on the suspect peer.
			attempts = 1
		}
		val, found, definitive := p.fetchOne(peer, path, attempts)
		if found {
			return val, true
		}
		if definitive {
			continue // healthy peer, key absent: no point retrying it
		}
	}
	return nil, false
}

// admit consults peer's breaker: (probe=true) allows one half-open
// trial, (skip=true) suppresses the peer entirely.
func (p *HTTPPeer) admit(peer *httpPeer) (probe, skip bool) {
	now := p.now()
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if !peer.tripped {
		return false, false
	}
	if now.Before(peer.nextProbe) {
		peer.stats.Skips++
		return false, true
	}
	peer.stats.Probes++
	// Push the next probe out so concurrent fetches don't stampede the
	// recovering peer; success resets the breaker entirely.
	peer.nextProbe = now.Add(p.opt.ProbeAfter)
	return true, false
}

// fetchOne runs the bounded retry loop against a single peer.
// definitive reports a clean 404 (peer healthy, key absent).
func (p *HTTPPeer) fetchOne(peer *httpPeer, path string, attempts int) (val []byte, found, definitive bool) {
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := p.opt.Backoff << (attempt - 1)
			d += time.Duration(rand.Int63n(int64(d)/2 + 1)) // +0–50% jitter
			time.Sleep(d)
		}
		v, status, err := p.get(peer.base + path)
		peer.mu.Lock()
		peer.stats.Fetches++
		switch {
		case err == nil && status == http.StatusOK:
			peer.stats.Hits++
			p.recordSuccessLocked(peer)
			peer.mu.Unlock()
			return v, true, false
		case err == nil && status == http.StatusNotFound:
			peer.stats.Misses++
			p.recordSuccessLocked(peer)
			peer.mu.Unlock()
			return nil, false, true
		default:
			peer.stats.Errors++
			peer.mu.Unlock()
		}
	}
	p.recordFailure(peer)
	return nil, false, false
}

// get performs one bounded request. A non-2xx/404 status is an error
// with a nil err, reported via the status code.
func (p *HTTPPeer) get(url string) ([]byte, int, error) {
	// Injected transport failure/latency: exercised like a dead or slow
	// peer — counted, retried, breaker-tripped, never surfaced upward.
	if err := fault.Do("store.peer.fetch"); err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.opt.Timeout)
	defer cancel()
	resp, err := p.opt.Client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, resp.StatusCode, nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, http.StatusOK, nil
}

// recordSuccessLocked closes the breaker. Caller holds peer.mu.
func (p *HTTPPeer) recordSuccessLocked(peer *httpPeer) {
	peer.consec = 0
	peer.tripped = false
	peer.stats.Tripped = false
	peer.stats.ConsecutiveFailures = 0
}

// recordFailure counts one exhausted fetch and trips the breaker at the
// threshold (or re-arms an already-open one after a failed probe).
func (p *HTTPPeer) recordFailure(peer *httpPeer) {
	now := p.now()
	peer.mu.Lock()
	defer peer.mu.Unlock()
	peer.consec++
	peer.stats.ConsecutiveFailures = peer.consec
	if peer.tripped {
		peer.nextProbe = now.Add(p.opt.ProbeAfter)
		return
	}
	if peer.consec >= p.opt.TripAfter {
		peer.tripped = true
		peer.stats.Tripped = true
		peer.stats.Trips++
		peer.nextProbe = now.Add(p.opt.ProbeAfter)
	}
}

// PeerStats implements PeerHealth: a point-in-time snapshot per peer,
// in configured order.
func (p *HTTPPeer) PeerStats() []PeerStats {
	out := make([]PeerStats, 0, len(p.peers))
	for _, peer := range p.peers {
		peer.mu.Lock()
		out = append(out, peer.stats)
		peer.mu.Unlock()
	}
	return out
}
