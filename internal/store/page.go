package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Slotted page layout (all little-endian), total size span*pageSize:
//
//	  0  u16 magic "PG"
//	  2  u16 span      — number of pageSize units this page occupies
//	  4  u16 nslots
//	  6  u16 (pad)
//	  8  u32 used      — payload bytes in use, counted from pageHeaderSize
//	 12  u32 crc       — CRC32 over header words 0..12 and the used payload
//	 16  payload       — entries appended front-to-back
//	...  slot directory — u32 entry offsets, growing from the page end
//
// Entries are append-only: an overwrite appends a fresh entry elsewhere
// and the old slot becomes dead weight until compaction rewrites the
// segment. Entry encoding:
//
//	flags u8 (bit0 = tombstone) | keyLen u16 | key | valLen u32 | value
const (
	pageMagic      = 0x4750 // "PG"
	pageHeaderSize = 16
	slotSize       = 4
	entryFixedSize = 1 + 2 + 4

	entryTombstone = byte(1)
)

// page is the in-memory mutable form the shard appends through; its
// backing buf is exactly the on-disk image (checksum patched on seal).
type page struct {
	buf    []byte
	nslots int
	used   int // payload bytes in use
}

// pageSpan returns how many pageSize units an entry of the given sizes
// needs, directory slot included.
func pageSpan(pageSize, keyLen, valLen int) int {
	need := pageHeaderSize + entryFixedSize + keyLen + valLen + slotSize
	span := (need + pageSize - 1) / pageSize
	if span < 1 {
		span = 1
	}
	return span
}

// newPage returns an empty page spanning span*pageSize bytes.
func newPage(pageSize, span int) *page {
	p := &page{buf: make([]byte, span*pageSize)}
	binary.LittleEndian.PutUint16(p.buf[0:], pageMagic)
	binary.LittleEndian.PutUint16(p.buf[2:], uint16(span))
	return p
}

// free reports the bytes available for one more entry plus its slot.
func (p *page) free() int {
	return len(p.buf) - pageHeaderSize - p.used - (p.nslots+1)*slotSize
}

// appendEntry adds an entry and returns its slot index. The caller
// checks fit via free().
func (p *page) appendEntry(key string, val []byte, tombstone bool) int {
	off := pageHeaderSize + p.used
	b := p.buf[off:off]
	var flags byte
	if tombstone {
		flags = entryTombstone
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(val)))
	b = append(b, val...)
	p.used += len(b)
	slot := p.nslots
	p.nslots++
	binary.LittleEndian.PutUint32(p.buf[len(p.buf)-slot*slotSize-slotSize:], uint32(off))
	binary.LittleEndian.PutUint16(p.buf[4:], uint16(p.nslots))
	binary.LittleEndian.PutUint32(p.buf[8:], uint32(p.used))
	return slot
}

// seal patches the checksum so buf is the exact durable image.
func (p *page) seal() {
	binary.LittleEndian.PutUint32(p.buf[12:], pageCRC(p.buf))
}

// pageCRC checksums the header (with the crc word zeroed by position —
// it is simply excluded) plus the used payload and the slot directory.
func pageCRC(buf []byte) uint32 {
	used := int(binary.LittleEndian.Uint32(buf[8:]))
	nslots := int(binary.LittleEndian.Uint16(buf[4:]))
	crc := crc32.Checksum(buf[:12], crcTable)
	end := pageHeaderSize + used
	if end > len(buf) {
		end = len(buf)
	}
	crc = crc32.Update(crc, crcTable, buf[pageHeaderSize:end])
	dirStart := len(buf) - nslots*slotSize
	if dirStart >= end && dirStart <= len(buf) {
		crc = crc32.Update(crc, crcTable, buf[dirStart:])
	}
	return crc
}

// parsePageHeader validates the fixed header of a (first) pageSize
// block and returns its span. It does not verify the checksum — the
// full buffer may not be read yet.
func parsePageHeader(buf []byte) (span int, err error) {
	if len(buf) < pageHeaderSize {
		return 0, fmt.Errorf("store: short page header")
	}
	if binary.LittleEndian.Uint16(buf[0:]) != pageMagic {
		return 0, fmt.Errorf("store: bad page magic %#x", binary.LittleEndian.Uint16(buf[0:]))
	}
	span = int(binary.LittleEndian.Uint16(buf[2:]))
	if span < 1 {
		return 0, fmt.Errorf("store: bad page span %d", span)
	}
	return span, nil
}

// verifyPage checks the checksum of a fully-read page image.
func verifyPage(buf []byte) error {
	used := int(binary.LittleEndian.Uint32(buf[8:]))
	nslots := int(binary.LittleEndian.Uint16(buf[4:]))
	if pageHeaderSize+used+nslots*slotSize > len(buf) {
		return fmt.Errorf("store: page accounting exceeds page size")
	}
	if pageCRC(buf) != binary.LittleEndian.Uint32(buf[12:]) {
		return fmt.Errorf("store: page checksum mismatch")
	}
	return nil
}

// pageEntry reads the slot'th entry of a page image.
func pageEntry(buf []byte, slot int) (key string, val []byte, tombstone bool, err error) {
	nslots := int(binary.LittleEndian.Uint16(buf[4:]))
	if slot < 0 || slot >= nslots {
		return "", nil, false, fmt.Errorf("store: slot %d out of range (%d slots)", slot, nslots)
	}
	off := int(binary.LittleEndian.Uint32(buf[len(buf)-slot*slotSize-slotSize:]))
	if off < pageHeaderSize || off+entryFixedSize > len(buf) {
		return "", nil, false, fmt.Errorf("store: slot %d offset %d out of range", slot, off)
	}
	flags := buf[off]
	keyLen := int(binary.LittleEndian.Uint16(buf[off+1:]))
	if off+3+keyLen+4 > len(buf) {
		return "", nil, false, fmt.Errorf("store: slot %d key overruns page", slot)
	}
	key = string(buf[off+3 : off+3+keyLen])
	valLen := int(binary.LittleEndian.Uint32(buf[off+3+keyLen:]))
	vstart := off + entryFixedSize + keyLen
	if vstart+valLen > len(buf) {
		return "", nil, false, fmt.Errorf("store: slot %d value overruns page", slot)
	}
	val = append([]byte(nil), buf[vstart:vstart+valLen]...)
	return key, val, flags&entryTombstone != 0, nil
}

// entrySize is the payload+slot footprint of an entry — the unit of
// dead-bytes accounting.
func entrySize(keyLen, valLen int) int {
	return entryFixedSize + keyLen + valLen + slotSize
}
