// Package store is the durable scenario-result store: a crash-safe,
// page-structured on-disk key/value engine purpose-built for the
// content-addressed result cache (internal/jobs). Keys are the
// byte-stable Scenario.Key content addresses; values are opaque byte
// slices (serialized sim.Metrics).
//
// The layering follows the classic educational-DB split:
//
//	WAL        — length-prefixed, CRC32-checksummed append log with
//	             group-commit fsync batching, segment rotation, and
//	             replay-on-open that truncates at the first torn record.
//	Pages      — append-mostly slotted pages in segment files; an
//	             in-memory hash index (key → page/slot) is rebuilt from
//	             the pages plus the WAL tail on open.
//	Buffer pool— a fixed-capacity LRU page cache with pin/unpin,
//	             dirty-page writeback and hit/miss/eviction counters.
//	Ring       — a consistent-hash router mapping keys across N local
//	             shards (each shard = its own WAL + segments + pool),
//	             with a PeerFiller hook so a miss can warm-fill from a
//	             peer replica before the caller recomputes.
//
// Durability contract: when Put returns, the entry's WAL record has
// been fsynced; a crash at any byte boundary loses at most the
// unacknowledged tail (replay truncates the torn record and recovers
// every fully-committed entry).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record ops.
const (
	// OpPut stores key → value.
	OpPut = byte(1)
	// OpDelete tombstones key.
	OpDelete = byte(2)
)

// Record is one logical WAL entry.
type Record struct {
	// Op is OpPut or OpDelete.
	Op byte
	// LSN is the shard-local log sequence number (1-based, dense).
	LSN uint64
	// Key is the entry's content address.
	Key string
	// Value is the payload (nil for OpDelete).
	Value []byte
}

// Wire format of one WAL record:
//
//	u32 payload length | u32 CRC32(payload) | payload
//	payload = op u8 | lsn u64 | keyLen u16 | key | value
//
// The length prefix bounds the read, the checksum catches torn or
// bit-rotted tails, and the fixed field order keeps decode allocation
// free except for the key/value copies.
const (
	recHeaderSize    = 8         // length + crc
	recFixedSize     = 1 + 8 + 2 // op + lsn + keyLen
	maxRecordPayload = 1 << 28   // 256 MiB sanity bound on corrupt lengths
	maxKeyLen        = 1<<16 - 1 // keyLen is a u16
	crcPoly          = crc32.Castagnoli
)

var crcTable = crc32.MakeTable(crcPoly)

// Record decode failures. ErrTornRecord means the bytes end mid-record
// or fail the checksum — the crash-recovery signal that tells replay to
// truncate; ErrBadRecord means a structurally impossible record that a
// clean writer could never have produced.
var (
	ErrTornRecord = errors.New("store: torn wal record")
	ErrBadRecord  = errors.New("store: malformed wal record")
)

// AppendRecord appends r's wire encoding to b and returns the extended
// slice.
func AppendRecord(b []byte, r Record) ([]byte, error) {
	if r.Op != OpPut && r.Op != OpDelete {
		return b, fmt.Errorf("%w: unknown op %d", ErrBadRecord, r.Op)
	}
	if len(r.Key) > maxKeyLen {
		return b, fmt.Errorf("%w: key length %d exceeds %d", ErrBadRecord, len(r.Key), maxKeyLen)
	}
	payloadLen := recFixedSize + len(r.Key) + len(r.Value)
	if payloadLen > maxRecordPayload {
		return b, fmt.Errorf("%w: payload %d exceeds %d", ErrBadRecord, payloadLen, maxRecordPayload)
	}
	start := len(b)
	b = append(b, make([]byte, recHeaderSize)...)
	b = append(b, r.Op)
	b = binary.LittleEndian.AppendUint64(b, r.LSN)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Key)))
	b = append(b, r.Key...)
	b = append(b, r.Value...)
	payload := b[start+recHeaderSize:]
	binary.LittleEndian.PutUint32(b[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b, nil
}

// DecodeRecord parses one record from the front of b. It returns the
// record and the number of bytes consumed. A short or checksum-failing
// buffer returns ErrTornRecord (the caller decides whether that is a
// recoverable tail or corruption); impossible field values return
// ErrBadRecord.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, ErrTornRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(b))
	if payloadLen < recFixedSize || payloadLen > maxRecordPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrBadRecord, payloadLen)
	}
	if len(b) < recHeaderSize+payloadLen {
		return Record{}, 0, ErrTornRecord
	}
	payload := b[recHeaderSize : recHeaderSize+payloadLen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, ErrTornRecord
	}
	op := payload[0]
	if op != OpPut && op != OpDelete {
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrBadRecord, op)
	}
	lsn := binary.LittleEndian.Uint64(payload[1:])
	keyLen := int(binary.LittleEndian.Uint16(payload[9:]))
	if recFixedSize+keyLen > payloadLen {
		return Record{}, 0, fmt.Errorf("%w: key length %d exceeds payload", ErrBadRecord, keyLen)
	}
	key := string(payload[recFixedSize : recFixedSize+keyLen])
	var val []byte
	if rest := payload[recFixedSize+keyLen:]; len(rest) > 0 {
		val = append([]byte(nil), rest...)
	}
	if op == OpDelete && val != nil {
		return Record{}, 0, fmt.Errorf("%w: delete record carries a value", ErrBadRecord)
	}
	return Record{Op: op, LSN: lsn, Key: key, Value: val}, recHeaderSize + payloadLen, nil
}
