package store

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyPathRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"plain-key",
		"sha256:abcdef0123456789",
		"with/slash and spaces",
		string([]byte{0, 1, 2, 0xff, 0xfe, '/', '%', '?', '#'}),
	}
	for _, key := range cases {
		seg := EncodeKeyPath(key)
		if strings.ContainsAny(seg, "/%?#") {
			t.Fatalf("EncodeKeyPath(%q) = %q contains path-unsafe characters", key, seg)
		}
		got, err := DecodeKeyPath(seg)
		if err != nil || got != key {
			t.Fatalf("round trip %q → %q → (%q, %v)", key, seg, got, err)
		}
	}
	if _, err := DecodeKeyPath("!not base64!"); err == nil {
		t.Fatal("bad segment decoded")
	}
}

// FuzzStoreKeyPath pins the /v1/store/{key} URL round-trip for
// arbitrary key bytes (store keys are content addresses, but nothing
// stops a caller storing raw binary keys).
func FuzzStoreKeyPath(f *testing.F) {
	f.Add("")
	f.Add("scenario-key")
	f.Add(string([]byte{0, 0xff, '/', '+', '=', ' '}))
	f.Fuzz(func(t *testing.T, key string) {
		seg := EncodeKeyPath(key)
		if strings.ContainsAny(seg, "/%?# ") {
			t.Fatalf("EncodeKeyPath(%q) = %q not path-safe", key, seg)
		}
		got, err := DecodeKeyPath(seg)
		if err != nil {
			t.Fatalf("DecodeKeyPath(EncodeKeyPath(%q)): %v", key, err)
		}
		if got != key {
			t.Fatalf("round trip %q → %q", key, got)
		}
	})
}

// peerHandler serves the replica fetch protocol from a plain map — the
// server side of the contract, without dragging internal/server into
// this package's tests.
func peerHandler(t *testing.T, data map[string][]byte, hits *atomic.Int64) http.Handler {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := DecodeKeyPath(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, ok := data[key]
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if hits != nil {
			hits.Add(1)
		}
		_, _ = w.Write(v)
	})
	return mux
}

func fastPeerOpts() HTTPPeerOptions {
	return HTTPPeerOptions{
		Timeout:    2 * time.Second,
		Attempts:   2,
		Backoff:    time.Millisecond,
		TripAfter:  2,
		ProbeAfter: time.Hour, // probes only when the test moves the clock
	}
}

func TestHTTPPeerFetch(t *testing.T) {
	data := map[string][]byte{
		"key-a": []byte("value-a"),
		"bin":   {0, 1, 2, 0xff},
	}
	ts := httptest.NewServer(peerHandler(t, data, nil))
	defer ts.Close()
	p := NewHTTPPeer([]string{ts.URL}, fastPeerOpts())
	if p == nil {
		t.Fatal("nil HTTPPeer for one valid URL")
	}
	for key, want := range data {
		v, ok := p.FetchPeer(key)
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("fetch %q: ok=%v v=%q", key, ok, v)
		}
	}
	if v, ok := p.FetchPeer("absent"); ok || v != nil {
		t.Fatal("phantom hit")
	}
	st := p.PeerStats()[0]
	if st.Hits != 2 || st.Misses != 1 || st.Errors != 0 || st.Fetches != 3 {
		t.Fatalf("peer stats %+v", st)
	}
	if st.Tripped || st.ConsecutiveFailures != 0 {
		t.Fatalf("healthy peer shows breaker state: %+v", st)
	}
}

// TestHTTPPeerFallsThroughToNextPeer: a failing first peer must not
// mask a healthy second one, and a clean 404 moves on without retrying.
func TestHTTPPeerFallsThroughToNextPeer(t *testing.T) {
	var broken atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		broken.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(peerHandler(t, map[string][]byte{"k": []byte("v")}, nil))
	defer good.Close()

	opt := fastPeerOpts()
	p := NewHTTPPeer([]string{bad.URL, good.URL}, opt)
	v, ok := p.FetchPeer("k")
	if !ok || string(v) != "v" {
		t.Fatalf("fetch through broken peer: ok=%v v=%q", ok, v)
	}
	stats := p.PeerStats()
	if stats[0].Errors != uint64(opt.Attempts) {
		t.Fatalf("bad peer errors %d, want the full attempt budget %d", stats[0].Errors, opt.Attempts)
	}
	if stats[1].Hits != 1 {
		t.Fatalf("good peer stats %+v", stats[1])
	}

	// A 404 from the first peer is definitive: exactly one request to
	// it, then straight to the second peer.
	empty := httptest.NewServer(peerHandler(t, nil, nil))
	defer empty.Close()
	p2 := NewHTTPPeer([]string{empty.URL, good.URL}, fastPeerOpts())
	if v, ok := p2.FetchPeer("k"); !ok || string(v) != "v" {
		t.Fatalf("404 fall-through: ok=%v v=%q", ok, v)
	}
	if st := p2.PeerStats()[0]; st.Fetches != 1 || st.Misses != 1 || st.Errors != 0 {
		t.Fatalf("definitive miss retried: %+v", st)
	}
}

// TestHTTPPeerTripAndProbe: consecutive failures open the breaker (the
// dead peer stops being asked), and after the probe interval a single
// half-open trial closes it again once the peer recovers.
func TestHTTPPeerTripAndProbe(t *testing.T) {
	var up atomic.Bool
	data := map[string][]byte{"k": []byte("v")}
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		peerHandler(t, data, nil).ServeHTTP(w, r)
	}))
	defer flaky.Close()

	opt := fastPeerOpts() // TripAfter: 2, ProbeAfter: 1h
	p := NewHTTPPeer([]string{flaky.URL}, opt)
	now := time.Now()
	var mu sync.Mutex
	p.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	for i := 0; i < 2; i++ {
		if _, ok := p.FetchPeer("k"); ok {
			t.Fatal("hit from a down peer")
		}
	}
	st := p.PeerStats()[0]
	if !st.Tripped || st.Trips != 1 || st.ConsecutiveFailures != 2 {
		t.Fatalf("breaker did not trip: %+v", st)
	}
	fetchesAtTrip := st.Fetches

	// While open: skipped, no requests spent.
	for i := 0; i < 3; i++ {
		if _, ok := p.FetchPeer("k"); ok {
			t.Fatal("hit while tripped")
		}
	}
	st = p.PeerStats()[0]
	if st.Fetches != fetchesAtTrip || st.Skips != 3 {
		t.Fatalf("open breaker still fetching: %+v", st)
	}

	// Past the probe interval, still down: one probe request, re-armed.
	mu.Lock()
	now = now.Add(opt.ProbeAfter + time.Second)
	mu.Unlock()
	if _, ok := p.FetchPeer("k"); ok {
		t.Fatal("hit from a still-down peer")
	}
	st = p.PeerStats()[0]
	if st.Probes != 1 || st.Fetches != fetchesAtTrip+1 || !st.Tripped {
		t.Fatalf("failed probe accounting: %+v", st)
	}

	// Peer recovers; next probe closes the breaker and serves again.
	up.Store(true)
	mu.Lock()
	now = now.Add(opt.ProbeAfter + time.Second)
	mu.Unlock()
	if v, ok := p.FetchPeer("k"); !ok || string(v) != "v" {
		t.Fatalf("recovered peer not served: ok=%v", ok)
	}
	st = p.PeerStats()[0]
	if st.Tripped || st.Probes != 2 || st.ConsecutiveFailures != 0 {
		t.Fatalf("breaker did not close after good probe: %+v", st)
	}
	// And stays closed for normal traffic.
	if _, ok := p.FetchPeer("k"); !ok {
		t.Fatal("closed breaker did not serve")
	}
}

// TestStoreHTTPPeerWarmFill wires a real Store to a real HTTP peer
// endpoint: local miss → network fetch → durable local adopt.
func TestStoreHTTPPeerWarmFill(t *testing.T) {
	data := map[string][]byte{}
	for i := 0; i < 8; i++ {
		data[fmt.Sprintf("key-%d", i)] = val(i)
	}
	ts := httptest.NewServer(peerHandler(t, data, nil))
	defer ts.Close()

	opt := smallOpts(t.TempDir())
	opt.Peer = NewHTTPPeer([]string{ts.URL}, fastPeerOpts())
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, ok, err := st.Get(key)
		if err != nil || !ok || !bytes.Equal(v, data[key]) {
			t.Fatalf("warm fill %s: ok=%v err=%v", key, ok, err)
		}
	}
	stats := st.Stats()
	if stats.PeerFills != 8 || stats.PeerFillErrors != 0 {
		t.Fatalf("peer fills %d (errors %d), want 8 (0)", stats.PeerFills, stats.PeerFillErrors)
	}
	if len(stats.Peers) != 1 || stats.Peers[0].Hits != 8 {
		t.Fatalf("peer health not surfaced: %+v", stats.Peers)
	}
	// Adopted durably: all local now, even after the peer dies.
	ts.Close()
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, ok, err := st.GetLocal(key); !ok || err != nil {
			t.Fatalf("fill for %s not durable locally: ok=%v err=%v", key, ok, err)
		}
	}
	// A dead peer degrades to a miss, never an error.
	if _, ok, err := st.Get("never-stored"); ok || err != nil {
		t.Fatalf("dead peer surfaced: ok=%v err=%v", ok, err)
	}
}

// peerFunc adapts a function to PeerFiller.
type peerFunc func(key string) ([]byte, bool)

func (f peerFunc) FetchPeer(key string) ([]byte, bool) { return f(key) }

// TestStorePeerFillErrorCounted: a fetched value whose durable local
// adopt fails is still served, and the failure is counted instead of
// swallowed. An over-long key reaches the peer fine but cannot be
// stored locally (WAL keys are u16-length), which is exactly such a
// failure.
func TestStorePeerFillErrorCounted(t *testing.T) {
	longKey := strings.Repeat("k", maxKeyLen+1)
	opt := smallOpts(t.TempDir())
	opt.Peer = peerFunc(func(key string) ([]byte, bool) {
		if key == longKey {
			return []byte("peer-value"), true
		}
		return nil, false
	})
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v, ok, err := st.Get(longKey)
	if err != nil || !ok || string(v) != "peer-value" {
		t.Fatalf("peer value not served despite fill failure: ok=%v err=%v", ok, err)
	}
	stats := st.Stats()
	if stats.PeerFills != 1 || stats.PeerFillErrors != 1 {
		t.Fatalf("fill failure not counted: fills=%d errors=%d", stats.PeerFills, stats.PeerFillErrors)
	}
}
