package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
)

// Fault points threaded through the store (see internal/fault): the
// chaos suite iterates fault.Points() to cover every one.
func init() {
	fault.Register(
		"store.wal.write",
		"store.wal.fsync",
		"store.page.writeback",
		"store.seg.fsync",
		"store.compact",
		"store.peer.fetch",
	)
}

// WAL segment file header:
//
//	u32 magic "TWAL" | u32 format version | u64 segment sequence
const (
	walMagic      = 0x4c415754 // "TWAL" little-endian
	walVersion    = 1
	walHeaderSize = 16
)

// WALStats counts write-ahead-log work. Fsyncs < Syncs is the
// group-commit win: concurrent committers piggyback on one fsync.
type WALStats struct {
	// Appends counts records written.
	Appends uint64 `json:"appends"`
	// AppendedBytes counts record bytes written (headers included).
	AppendedBytes uint64 `json:"appended_bytes"`
	// Syncs counts durability requests (one per acknowledged Put).
	Syncs uint64 `json:"syncs"`
	// Fsyncs counts physical fsync calls; the gap to Syncs is the
	// group-commit batching.
	Fsyncs uint64 `json:"fsyncs"`
	// Rotations counts segment rollovers.
	Rotations uint64 `json:"rotations"`
	// Segments is the current on-disk segment-file count.
	Segments int `json:"segments"`
	// ReplayRecords counts records recovered by the last open.
	ReplayRecords uint64 `json:"replay_records"`
	// TruncatedBytes counts bytes cut from a torn tail by the last open.
	TruncatedBytes uint64 `json:"truncated_bytes"`
}

// WAL is one shard's write-ahead log: an append-only sequence of
// checksummed records across rotating segment files. Appends are
// buffered; Sync makes everything appended so far durable, batching
// concurrent callers behind a single fsync (group commit).
type WAL struct {
	dir    string
	maxSeg int64

	mu        sync.Mutex // guards appends, rotation, stats
	f         *os.File
	w         *bufio.Writer
	seq       uint64 // active segment sequence
	size      int64  // active segment size including header
	nextLSN   uint64
	lastLSN   uint64            // last appended LSN
	segLast   map[uint64]uint64 // segment seq → last LSN it contains
	stats     WALStats
	appendBuf []byte

	syncMu    sync.Mutex // serializes fsync; waiters form the commit group
	syncedLSN uint64     // guarded by syncMu

	failMu  sync.Mutex
	failErr error // first durability failure; sticky (see failed)
}

// failed returns the sticky durability failure, if any. Once a flush or
// fsync has failed the log never acknowledges durability again: the
// kernel may already have dropped the dirty pages the failed fsync
// covered (the fsyncgate hazard), so a later fsync returning nil proves
// nothing about them. The owning shard wedges into degraded read-only
// mode; recovery is a process restart and WAL replay.
func (w *WAL) failed() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// fail records the first durability failure and returns the sticky
// error all subsequent operations report.
func (w *WAL) fail(err error) error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	if w.failErr == nil {
		w.failErr = fmt.Errorf("store: wal wedged after durability failure: %w", err)
	}
	return w.failErr
}

// faultWriter interposes the WAL's write fault point between the bufio
// buffer and the segment file, so an injected torn write produces a
// genuinely torn record on disk — exactly what a crash mid-write leaves
// — which reopen-time replay must truncate.
type faultWriter struct {
	f *os.File
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	n, ferr := fault.WriteLen("store.wal.write", len(p))
	m, werr := fw.f.Write(p[:n])
	if werr != nil {
		return m, werr
	}
	if ferr != nil {
		return m, ferr
	}
	return m, nil
}

// OpenWAL opens the shard WAL in dir, replaying existing segments in
// order. Every fully-committed record is passed to apply (in LSN
// order); the first torn record truncates its segment and ends replay
// — by the durability contract everything after it was never
// acknowledged. Appending resumes in a fresh segment.
func OpenWAL(dir string, maxSegmentBytes int64, apply func(Record) error) (*WAL, error) {
	if maxSegmentBytes <= walHeaderSize {
		maxSegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:     dir,
		maxSeg:  maxSegmentBytes,
		nextLSN: 1,
		segLast: map[uint64]uint64{},
	}
	seqs, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		last, n, err := w.replaySegment(seq, apply)
		if err != nil {
			return nil, err
		}
		w.stats.ReplayRecords += n
		if last > 0 {
			w.segLast[seq] = last
			if last > w.lastLSN {
				w.lastLSN = last
			}
		}
		if seq >= w.seq {
			w.seq = seq
		}
	}
	w.nextLSN = w.lastLSN + 1
	w.stats.Segments = len(seqs)
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// walSegments lists segment sequences in dir, ascending.
func walSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", seq))
}

// replaySegment scans one segment, applying committed records. A torn
// tail (short record or checksum failure) truncates the file at the
// last good boundary; a structurally impossible record is real
// corruption and fails the open.
func (w *WAL) replaySegment(seq uint64, apply func(Record) error) (lastLSN, n uint64, err error) {
	path := walPath(w.dir, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < walHeaderSize {
		// Header itself is torn: the segment holds nothing committed.
		w.stats.TruncatedBytes += uint64(len(data))
		return 0, 0, os.Truncate(path, 0)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], data)
	if le32(hdr[0:]) != walMagic || le32(hdr[4:]) != walVersion {
		return 0, 0, fmt.Errorf("store: %s: bad wal segment header", path)
	}
	off := walHeaderSize
	for off < len(data) {
		rec, consumed, derr := DecodeRecord(data[off:])
		if derr != nil {
			if errors.Is(derr, ErrTornRecord) {
				w.stats.TruncatedBytes += uint64(len(data) - off)
				return lastLSN, n, os.Truncate(path, int64(off))
			}
			return 0, 0, fmt.Errorf("store: %s at offset %d: %w", path, off, derr)
		}
		if apply != nil {
			if aerr := apply(rec); aerr != nil {
				return 0, 0, aerr
			}
		}
		lastLSN = rec.LSN
		n++
		off += consumed
	}
	return lastLSN, n, nil
}

// rotateLocked closes the active segment (if any) and starts the next
// one. Callers hold w.mu or have exclusive access.
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.stats.Rotations++
	}
	w.seq++
	f, err := os.OpenFile(walPath(w.dir, w.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [walHeaderSize]byte
	putLE32(hdr[0:], walMagic)
	putLE32(hdr[4:], walVersion)
	putLE64(hdr[8:], w.seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.w = bufio.NewWriterSize(&faultWriter{f: f}, 1<<16)
	w.size = walHeaderSize
	w.stats.Segments++
	return nil
}

// Append writes one record (buffered, not yet durable) and returns its
// LSN. Call Sync with the returned LSN to make it durable.
func (w *WAL) Append(op byte, key string, value []byte) (uint64, error) {
	if err := w.failed(); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.nextLSN
	var err error
	w.appendBuf, err = AppendRecord(w.appendBuf[:0], Record{Op: op, LSN: lsn, Key: key, Value: value})
	if err != nil {
		return 0, err
	}
	if _, err := w.w.Write(w.appendBuf); err != nil {
		// A failed buffered write leaves an unknown prefix of the record
		// in the segment; nothing after it can ever be trusted durable.
		return 0, w.fail(err)
	}
	w.nextLSN++
	w.lastLSN = lsn
	w.segLast[w.seq] = lsn
	w.size += int64(len(w.appendBuf))
	w.stats.Appends++
	w.stats.AppendedBytes += uint64(len(w.appendBuf))
	if w.size >= w.maxSeg {
		if err := w.rotateLocked(); err != nil {
			// Rotation flushes and fsyncs the outgoing segment; a failure
			// leaves its durability unknown.
			return 0, w.fail(err)
		}
	}
	return lsn, nil
}

// Sync blocks until every record up to lsn is durable. Concurrent
// callers group-commit: whoever acquires the sync mutex first fsyncs
// everything appended so far, and the queued callers find their LSN
// already covered.
//
// A flush or fsync failure is sticky: every subsequent Sync fails too,
// even for LSNs an earlier call acknowledged. Re-trying the fsync and
// acknowledging on its success would be wrong — the kernel may have
// dropped the dirty pages when the first fsync failed, so the "synced"
// data can be gone while the retry reports success (fsyncgate).
func (w *WAL) Sync(lsn uint64) error {
	w.mu.Lock()
	w.stats.Syncs++
	w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if err := w.failed(); err != nil {
		return err
	}
	if w.syncedLSN >= lsn {
		return nil
	}
	w.mu.Lock()
	target := w.lastLSN
	f := w.f
	err := w.w.Flush()
	w.mu.Unlock()
	if err != nil {
		return w.fail(err)
	}
	if err := fault.Do("store.wal.fsync"); err != nil {
		return w.fail(err)
	}
	// A rotation between the flush above and this fsync closes f — but
	// rotateLocked fsyncs the outgoing segment first, so the records are
	// already durable and a closed file here means success.
	if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
		return w.fail(err)
	}
	w.mu.Lock()
	w.stats.Fsyncs++
	w.mu.Unlock()
	w.syncedLSN = target
	return nil
}

// Rotate closes the active segment (if it holds any records) and
// starts a fresh one, so a following DropBefore can reclaim it once a
// checkpoint makes its records redundant.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dirty := w.segLast[w.seq]; !dirty {
		return nil
	}
	return w.rotateLocked()
}

// LastLSN returns the highest appended LSN.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// DropBefore deletes inactive segments fully covered by lsn — called
// after a checkpoint makes their records redundant with the pages.
func (w *WAL) DropBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs, err := walSegments(w.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq == w.seq {
			continue
		}
		last, known := w.segLast[seq]
		if known && last > lsn {
			continue
		}
		if err := os.Remove(walPath(w.dir, seq)); err != nil {
			return err
		}
		delete(w.segLast, seq)
		w.stats.Segments--
	}
	return nil
}

// Stats snapshots the counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close flushes, fsyncs and closes the active segment. A wedged log
// (sticky durability failure) only releases the file handle: flushing
// or fsyncing would risk acknowledging data the kernel already dropped,
// and the failure was reported when it happened.
func (w *WAL) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if w.failed() != nil {
		err := w.f.Close()
		w.f = nil
		return err
	}
	if err := w.w.Flush(); err != nil {
		return w.fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}
