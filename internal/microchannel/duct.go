// Package microchannel models the single-phase hydrodynamics and
// convection of the inter-tier heat-transfer structures explored in §II-C
// of the DATE 2011 paper:
//
//   - rectangular micro-channels (Shah–London laminar friction and Nusselt
//     correlations),
//   - circular pin-fin arrays in in-line and staggered arrangements,
//   - hot-spot-aware width modulation of channel arrays,
//   - fluid-focusing hydraulic networks with guiding structures (Fig. 4).
//
// Everything is steady, incompressible and laminar — the Table-I operating
// envelope (50×100 µm² channels, ≤ 32.3 ml/min per cavity) keeps Reynolds
// numbers below ~100, far from transition.
package microchannel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fluids"
)

// Channel describes one rectangular micro-channel.
type Channel struct {
	// W is the channel width in metres (Table I: 50 µm).
	W float64
	// H is the channel height in metres (the 0.1 mm inter-tier cavity).
	H float64
	// L is the channel length in metres (the die extent along flow).
	L float64
}

// Validate reports whether the geometry is physically meaningful.
func (c Channel) Validate() error {
	if c.W <= 0 || c.H <= 0 || c.L <= 0 {
		return fmt.Errorf("microchannel: non-positive channel dimension %+v", c)
	}
	return nil
}

// Dh returns the hydraulic diameter 4A/P = 2WH/(W+H).
func (c Channel) Dh() float64 { return 2 * c.W * c.H / (c.W + c.H) }

// Area returns the flow cross-section in m².
func (c Channel) Area() float64 { return c.W * c.H }

// AspectRatio returns min(W,H)/max(W,H) ∈ (0, 1].
func (c Channel) AspectRatio() float64 {
	if c.W < c.H {
		return c.W / c.H
	}
	return c.H / c.W
}

// FRe returns the laminar friction constant f·Re for a rectangular duct as
// a function of aspect ratio (Shah & London, 1978). It spans 24·(…) ≈
// 14.23 for a square duct up to 24 for parallel plates.
func (c Channel) FRe() float64 {
	a := c.AspectRatio()
	return 24 * (1 - 1.3553*a + 1.9467*a*a - 1.7012*a*a*a + 0.9564*a*a*a*a - 0.2537*a*a*a*a*a)
}

// Nu returns the fully developed laminar Nusselt number for the H1
// (axially constant heat flux) boundary condition (Shah & London, 1978):
// 8.235·(…) ≈ 3.61 for a square duct up to 8.235 for parallel plates.
func (c Channel) Nu() float64 {
	a := c.AspectRatio()
	return 8.235 * (1 - 2.0421*a + 3.0853*a*a - 2.4765*a*a*a + 1.0578*a*a*a*a - 0.1861*a*a*a*a*a)
}

// HTC returns the convective heat-transfer coefficient h = Nu·k/Dh in
// W/(m²·K) for the given coolant.
func (c Channel) HTC(f fluids.Fluid) float64 { return c.Nu() * f.K / c.Dh() }

// Velocity returns the mean velocity for a per-channel volumetric flow
// rate q (m³/s).
func (c Channel) Velocity(q float64) float64 { return q / c.Area() }

// Reynolds returns the Reynolds number ρ·u·Dh/µ at flow rate q.
func (c Channel) Reynolds(f fluids.Fluid, q float64) float64 {
	return f.Rho * c.Velocity(q) * c.Dh() / f.Mu
}

// PressureDrop returns the laminar pressure drop (Pa) across the channel
// at per-channel flow rate q: ΔP = fRe·µ·L·u / (2·Dh²).
func (c Channel) PressureDrop(f fluids.Fluid, q float64) float64 {
	return c.FRe() * f.Mu * c.L * c.Velocity(q) / (2 * c.Dh() * c.Dh())
}

// HydraulicResistance returns ΔP/Q in Pa·s/m³ — the linear (laminar)
// resistance of the channel, used by the network solver.
func (c Channel) HydraulicResistance(f fluids.Fluid) float64 {
	return c.FRe() * f.Mu * c.L / (2 * c.Dh() * c.Dh() * c.Area())
}

// PumpingPower returns the hydraulic pumping power ΔP·Q (W) for one
// channel at flow rate q.
func (c Channel) PumpingPower(f fluids.Fluid, q float64) float64 {
	return c.PressureDrop(f, q) * q
}

// ThermalLength returns the thermal entrance length x* = Re·Pr·Dh·0.05;
// channels shorter than this are partially developing and real HTCs exceed
// the fully developed value, so using Nu_fd is conservative.
func (c Channel) ThermalLength(f fluids.Fluid, q float64) float64 {
	return 0.05 * c.Reynolds(f, q) * f.Prandtl() * c.Dh()
}

// Array is a parallel bank of identical channels at a fixed pitch across
// a die, fed by a shared plenum (the standard inter-tier cavity layout).
type Array struct {
	Ch Channel
	// Pitch is the centre-to-centre channel spacing (Table I: 0.15 mm).
	Pitch float64
	// N is the number of channels.
	N int
}

// NewArray builds an array spanning a die of width across (m), with the
// given channel geometry and pitch; N = floor(across/pitch).
func NewArray(ch Channel, pitch, across float64) (Array, error) {
	if err := ch.Validate(); err != nil {
		return Array{}, err
	}
	if pitch < ch.W {
		return Array{}, fmt.Errorf("microchannel: pitch %g smaller than channel width %g", pitch, ch.W)
	}
	n := int(across / pitch)
	if n < 1 {
		return Array{}, errors.New("microchannel: die too narrow for one channel")
	}
	return Array{Ch: ch, Pitch: pitch, N: n}, nil
}

// PerChannelFlow splits a total cavity flow rate (m³/s) evenly across the
// channels, matching the paper's "fluid flows through each channel at the
// same flow rate".
func (a Array) PerChannelFlow(qTotal float64) float64 { return qTotal / float64(a.N) }

// PressureDrop returns the cavity pressure drop at total flow qTotal;
// identical parallel channels share the plenum pressure.
func (a Array) PressureDrop(f fluids.Fluid, qTotal float64) float64 {
	return a.Ch.PressureDrop(f, a.PerChannelFlow(qTotal))
}

// PumpingPower returns the hydraulic power ΔP·Q_total for the cavity.
func (a Array) PumpingPower(f fluids.Fluid, qTotal float64) float64 {
	return a.PressureDrop(f, qTotal) * qTotal
}

// WettedAreaPerFootprint returns the channel wetted perimeter area per
// unit die footprint area — the factor that converts the duct HTC into an
// effective footprint HTC for the porous-averaged cavity model:
//
//	h_eff = h_duct · (wetted perimeter · L) / (pitch · L)
func (a Array) WettedAreaPerFootprint() float64 {
	per := 2 * (a.Ch.W + a.Ch.H)
	return per / a.Pitch
}

// EffectiveHTC returns the footprint-referred heat transfer coefficient of
// the cavity in W/(m²·K).
func (a Array) EffectiveHTC(f fluids.Fluid) float64 {
	return a.Ch.HTC(f) * a.WettedAreaPerFootprint() / 2
	// The /2 splits the wetted perimeter between the two faces (tier
	// above and tier below) that the cavity cools.
}

// FluidFraction returns the in-plane porosity W/pitch of the cavity.
func (a Array) FluidFraction() float64 { return a.Ch.W / a.Pitch }

// BulkTemperatureRise returns the inlet→outlet coolant temperature rise
// ΔT = P/(ρ·cp·Q) for total absorbed power p (W) at total flow qTotal.
// At Table-I conditions with water this reproduces the paper's observation
// of significant sensible heating (≈40 K at 130 W/tier, §II-C).
func (a Array) BulkTemperatureRise(f fluids.Fluid, p, qTotal float64) float64 {
	mdotCp := f.Rho * f.Cp * qTotal
	if mdotCp <= 0 {
		return math.Inf(1)
	}
	return p / mdotCp
}

// TableIChannel returns the channel geometry of Table I: 50 µm wide,
// 100 µm tall (the inter-tier cavity height), spanning the die width.
func TableIChannel(length float64) Channel {
	return Channel{W: 50e-6, H: 100e-6, L: length}
}

// TableIArray returns the Table-I cavity: 50 µm channels at 0.15 mm pitch
// across a die of extent `across`, flowing along `length`.
func TableIArray(length, across float64) (Array, error) {
	return NewArray(TableIChannel(length), 150e-6, across)
}
