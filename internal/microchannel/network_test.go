package microchannel

import (
	"math"
	"testing"

	"repro/internal/fluids"
	"repro/internal/units"
)

func TestNetworkBasics(t *testing.T) {
	n, err := NewNetwork([]Path{
		{Name: "a", R: 2},
		{Name: "b", R: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Conductance(); got != 1 {
		t.Errorf("conductance = %v, want 1", got)
	}
	flows, total := n.FlowsAtPressure(4)
	if flows[0] != 2 || flows[1] != 2 || total != 4 {
		t.Errorf("flows = %v total = %v", flows, total)
	}
	if got := n.PressureForTotal(4); got != 4 {
		t.Errorf("pressure for total = %v, want 4", got)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network must be rejected")
	}
	if _, err := NewNetwork([]Path{{R: 0}}); err == nil {
		t.Error("zero resistance must be rejected")
	}
}

func TestNetworkFlowConservation(t *testing.T) {
	n, _ := NewNetwork([]Path{{R: 1}, {R: 2}, {R: 4, Hotspot: true}})
	flows, total := n.FlowsAtPressure(8)
	s := 0.0
	for _, f := range flows {
		s += f
	}
	if math.Abs(s-total) > 1e-12 {
		t.Errorf("per-path flows %v don't sum to total %v", s, total)
	}
	if got := n.HotspotFlow(8); got != 2 {
		t.Errorf("hotspot flow = %v, want 2", got)
	}
}

func TestFluidFocusFig4(t *testing.T) {
	// Fig. 4: the fluid-focused cavity increases hot-spot flow (cooler
	// hot spot) while reducing aggregate flow.
	ch := TableIChannel(11.5e-3)
	res, err := FluidFocusStudy(ch, fluids.Water(), 66, 30, 36, 3.0, 1.5,
		2e4, units.WPerCm2ToWPerM2(150), 150e-6)
	if err != nil {
		t.Fatal(err)
	}
	if res.HotspotFlowGain <= 1.5 {
		t.Errorf("hotspot flow gain = %v, want > 1.5", res.HotspotFlowGain)
	}
	if res.TotalFlowRatio >= 1 {
		t.Errorf("aggregate flow ratio = %v, want < 1 (the paper's caveat)", res.TotalFlowRatio)
	}
	if res.FocusedHotspotSuperheat >= res.UniformHotspotSuperheat {
		t.Errorf("focused superheat %v should be below uniform %v",
			res.FocusedHotspotSuperheat, res.UniformHotspotSuperheat)
	}
}

func TestFluidFocusValidation(t *testing.T) {
	ch := TableIChannel(1e-2)
	w := fluids.Water()
	if _, err := FluidFocusStudy(ch, w, 1, 0, 1, 2, 2, 1e4, 1e6, 150e-6); err == nil {
		t.Error("nPaths < 2 must fail")
	}
	if _, err := FluidFocusStudy(ch, w, 10, 5, 3, 2, 2, 1e4, 1e6, 150e-6); err == nil {
		t.Error("inverted hot range must fail")
	}
	if _, err := FluidFocusStudy(ch, w, 10, 2, 4, 0.5, 2, 1e4, 1e6, 150e-6); err == nil {
		t.Error("focusFactor < 1 must fail")
	}
	if _, err := FluidFocusStudy(Channel{}, w, 10, 2, 4, 2, 2, 1e4, 1e6, 150e-6); err == nil {
		t.Error("invalid channel must fail")
	}
}

func TestFluidFocusNeutralFactorsChangeNothing(t *testing.T) {
	ch := TableIChannel(11.5e-3)
	res, err := FluidFocusStudy(ch, fluids.Water(), 20, 8, 12, 1, 1,
		1e4, 1e6, 150e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(res.HotspotFlowGain, 1, 1e-9) {
		t.Errorf("neutral focus changed hotspot flow: %v", res.HotspotFlowGain)
	}
	if !units.ApproxEqual(res.TotalFlowRatio, 1, 1e-9) {
		t.Errorf("neutral focus changed total flow: %v", res.TotalFlowRatio)
	}
}
