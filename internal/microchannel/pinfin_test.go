package microchannel

import (
	"testing"

	"repro/internal/fluids"
	"repro/internal/units"
)

func basePins() PinFinArray {
	return PinFinArray{
		D: 50e-6, H: 100e-6,
		St: 150e-6, Sl: 150e-6,
		Across: 10e-3, Along: 11.5e-3,
		Arrangement: InLine,
		Shape:       Circular,
	}
}

func TestPinFinValidate(t *testing.T) {
	p := basePins()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.St = p.D // pins touching: invalid
	if err := p.Validate(); err == nil {
		t.Error("St <= D must be rejected")
	}
}

func TestInlineVsStaggeredPaperConclusion(t *testing.T) {
	// §II-C: "circular in-line pins result in low pressure drop at
	// acceptable convective heat transfer, compared to staggered".
	w := fluids.Water()
	q := units.MlPerMinToM3PerS(20)
	inline, staggered, err := ComparePinArrangements(basePins(), w, q)
	if err != nil {
		t.Fatal(err)
	}
	if inline.PressureDrop >= staggered.PressureDrop {
		t.Errorf("in-line dP %v should be below staggered %v",
			inline.PressureDrop, staggered.PressureDrop)
	}
	// "Acceptable" heat transfer: within ~30% of staggered.
	if inline.EffHTC < 0.7*staggered.EffHTC {
		t.Errorf("in-line h_eff %v too far below staggered %v",
			inline.EffHTC, staggered.EffHTC)
	}
	// The efficiency conclusion: in-line heat transfer per pump watt wins.
	inlineCOP := inline.EffHTC / inline.PumpPower
	staggeredCOP := staggered.EffHTC / staggered.PumpPower
	if inlineCOP <= staggeredCOP {
		t.Errorf("in-line COP %v should exceed staggered %v", inlineCOP, staggeredCOP)
	}
}

func TestPinShapes(t *testing.T) {
	w := fluids.Water()
	q := units.MlPerMinToM3PerS(20)
	circ, sq, drop := basePins(), basePins(), basePins()
	sq.Shape = Square
	drop.Shape = DropShape
	if sq.PressureDrop(w, q) <= circ.PressureDrop(w, q) {
		t.Error("square pins should cost more pressure than circular")
	}
	if drop.PressureDrop(w, q) >= circ.PressureDrop(w, q) {
		t.Error("drop-shaped pins should cost less pressure than circular")
	}
	if drop.HTC(w, q) >= circ.HTC(w, q) {
		t.Error("drop shape trades away some heat transfer")
	}
}

func TestPinPressureDropIncreasingInFlow(t *testing.T) {
	w := fluids.Water()
	p := basePins()
	prev := 0.0
	for _, ml := range []float64{5, 10, 20, 30} {
		dp := p.PressureDrop(w, units.MlPerMinToM3PerS(ml))
		if dp <= prev {
			t.Fatalf("dP not increasing at %v ml/min: %v <= %v", ml, dp, prev)
		}
		prev = dp
	}
}

func TestPinHTCIncreasingInFlow(t *testing.T) {
	w := fluids.Water()
	p := basePins()
	prev := 0.0
	for _, ml := range []float64{5, 10, 20, 30} {
		h := p.EffectiveHTC(w, units.MlPerMinToM3PerS(ml))
		if h <= prev {
			t.Fatalf("h_eff not increasing at %v ml/min: %v <= %v", ml, h, prev)
		}
		prev = h
	}
}

func TestPinGeometryAccessors(t *testing.T) {
	p := basePins()
	if p.Rows() < 70 || p.Rows() > 80 {
		t.Errorf("rows = %d, want ~76 (11.5mm / 0.15mm)", p.Rows())
	}
	if p.PinsPerRow() < 60 || p.PinsPerRow() > 70 {
		t.Errorf("pins/row = %d, want ~66", p.PinsPerRow())
	}
	if p.WettedAreaPerFootprint() <= 0 {
		t.Error("wetted area ratio must be positive")
	}
}

func TestMaxVelocityContinuity(t *testing.T) {
	p := basePins()
	q := units.MlPerMinToM3PerS(20)
	uInf := q / (p.Across * p.H)
	uMax := p.MaxVelocity(q)
	want := uInf * p.St / (p.St - p.D)
	if !units.ApproxEqual(uMax, want, 1e-12) {
		t.Errorf("uMax = %v, want %v", uMax, want)
	}
	if uMax <= uInf {
		t.Error("uMax must exceed approach velocity")
	}
}

func TestPinCOPFiniteAndPositive(t *testing.T) {
	p := basePins()
	cop := p.COP(fluids.Water(), units.MlPerMinToM3PerS(15))
	if cop <= 0 {
		t.Errorf("COP = %v, want > 0", cop)
	}
}

func TestComparePinArrangementsRejectsBadGeometry(t *testing.T) {
	bad := basePins()
	bad.D = -1
	if _, _, err := ComparePinArrangements(bad, fluids.Water(), 1e-8); err == nil {
		t.Error("expected validation error")
	}
}
