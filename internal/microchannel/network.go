package microchannel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fluids"
)

// Path is one hydraulic route from the inlet plenum to the outlet plenum
// of a heat-transfer cavity: in the fluid-focusing super-structures of
// §II-C (Fig. 4) guiding walls lower the resistance of routes crossing a
// hot spot and raise it elsewhere.
type Path struct {
	Name string
	// R is the (laminar, linear) hydraulic resistance ΔP/Q in Pa·s/m³.
	R float64
	// Hotspot marks routes that pass over the hot-spot region.
	Hotspot bool
}

// Network is a set of parallel hydraulic paths sharing plenum pressure.
type Network struct {
	Paths []Path
}

// NewNetwork validates and wraps a path set.
func NewNetwork(paths []Path) (*Network, error) {
	if len(paths) == 0 {
		return nil, errors.New("microchannel: network needs at least one path")
	}
	for i, p := range paths {
		if p.R <= 0 {
			return nil, fmt.Errorf("microchannel: path %d (%s) has non-positive resistance", i, p.Name)
		}
	}
	return &Network{Paths: append([]Path(nil), paths...)}, nil
}

// Conductance returns the total hydraulic conductance Σ 1/R_i (m³/(s·Pa)).
func (n *Network) Conductance() float64 {
	c := 0.0
	for _, p := range n.Paths {
		c += 1 / p.R
	}
	return c
}

// FlowsAtPressure returns the per-path flows at plenum pressure dp (Pa)
// and their total.
func (n *Network) FlowsAtPressure(dp float64) (flows []float64, total float64) {
	flows = make([]float64, len(n.Paths))
	for i, p := range n.Paths {
		flows[i] = dp / p.R
		total += flows[i]
	}
	return flows, total
}

// PressureForTotal returns the plenum pressure needed to drive total flow
// q through the network.
func (n *Network) PressureForTotal(q float64) float64 {
	return q / n.Conductance()
}

// HotspotFlow returns the summed flow through hot-spot paths at plenum
// pressure dp.
func (n *Network) HotspotFlow(dp float64) float64 {
	s := 0.0
	for _, p := range n.Paths {
		if p.Hotspot {
			s += dp / p.R
		}
	}
	return s
}

// FocusResult compares a uniform cavity against a fluid-focused one at a
// fixed pump pressure budget: the focused design boosts hot-spot flow at
// the cost of aggregate flow — the trade the paper flags ("we only
// consider this option ... at a high heat flux contrast ... since the
// aggregate flow rate is reduced").
type FocusResult struct {
	UniformHotspotFlow float64 // m³/s through hot-spot paths, uniform
	FocusedHotspotFlow float64
	UniformTotalFlow   float64
	FocusedTotalFlow   float64

	HotspotFlowGain float64 // focused / uniform hot-spot flow
	TotalFlowRatio  float64 // focused / uniform aggregate flow

	// Hot-spot thermal metric: convective superheat q″/h where the local
	// HTC scales with the local per-path flow via the developing-flow
	// exponent; lower is cooler.
	UniformHotspotSuperheat float64 // K
	FocusedHotspotSuperheat float64 // K
}

// FluidFocusStudy builds the Fig. 4 comparison. The cavity has nPaths
// identical channels (geometry ch); paths [hotLo, hotHi) cross the hot
// spot. The focused variant divides hot-spot path resistance by
// focusFactor (guide structures shorten the inlet→hot-spot route) and
// multiplies the remaining paths' resistance by blockFactor (guides
// obstruct them). Both run from the same plenum pressure dp. hotFlux is
// the hot-spot footprint flux (W/m²) used for the superheat metric.
func FluidFocusStudy(ch Channel, f fluids.Fluid, nPaths, hotLo, hotHi int, focusFactor, blockFactor, dp, hotFlux, pitch float64) (*FocusResult, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	if nPaths < 2 || hotLo < 0 || hotHi <= hotLo || hotHi > nPaths {
		return nil, fmt.Errorf("microchannel: bad path partition n=%d hot=[%d,%d)", nPaths, hotLo, hotHi)
	}
	if focusFactor < 1 || blockFactor < 1 || dp <= 0 {
		return nil, fmt.Errorf("microchannel: focusFactor and blockFactor must be ≥ 1, dp > 0")
	}
	r0 := ch.HydraulicResistance(f)
	mk := func(focused bool) []Path {
		ps := make([]Path, nPaths)
		for i := range ps {
			hot := i >= hotLo && i < hotHi
			r := r0
			if focused {
				if hot {
					r = r0 / focusFactor
				} else {
					r = r0 * blockFactor
				}
			}
			ps[i] = Path{Name: fmt.Sprintf("ch%d", i), R: r, Hotspot: hot}
		}
		return ps
	}
	uni, err := NewNetwork(mk(false))
	if err != nil {
		return nil, err
	}
	foc, err := NewNetwork(mk(true))
	if err != nil {
		return nil, err
	}
	res := &FocusResult{}
	_, res.UniformTotalFlow = uni.FlowsAtPressure(dp)
	_, res.FocusedTotalFlow = foc.FlowsAtPressure(dp)
	res.UniformHotspotFlow = uni.HotspotFlow(dp)
	res.FocusedHotspotFlow = foc.HotspotFlow(dp)
	res.HotspotFlowGain = res.FocusedHotspotFlow / res.UniformHotspotFlow
	res.TotalFlowRatio = res.FocusedTotalFlow / res.UniformTotalFlow

	// Convective superheat with a weak flow dependence of the local HTC
	// (thermally developing laminar flow: h ~ q_path^1/3).
	nHot := float64(hotHi - hotLo)
	hAt := func(qPath float64) float64 {
		base := ch.HTC(f) * 2 * (ch.W + ch.H) / pitch / 2
		ref := res.UniformHotspotFlow / nHot
		if ref <= 0 || qPath <= 0 {
			return base
		}
		ratio := qPath / ref
		return base * math.Cbrt(ratio)
	}
	qU := res.UniformHotspotFlow / nHot
	qF := res.FocusedHotspotFlow / nHot
	res.UniformHotspotSuperheat = hotFlux / hAt(qU)
	res.FocusedHotspotSuperheat = hotFlux / hAt(qF)
	return res, nil
}
