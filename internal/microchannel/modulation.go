package microchannel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fluids"
)

// Segment is one axial stretch of a heat-transfer cavity with a uniform
// footprint heat flux. A channel crossing a die sees a sequence of
// segments (background, hot spot, background, ...).
type Segment struct {
	// Len is the streamwise length in metres.
	Len float64
	// Flux is the footprint heat flux in W/m².
	Flux float64
}

// validateSegments checks a segment profile.
func validateSegments(segs []Segment) error {
	if len(segs) == 0 {
		return errors.New("microchannel: empty segment profile")
	}
	for i, s := range segs {
		if s.Len <= 0 || s.Flux < 0 {
			return fmt.Errorf("microchannel: invalid segment %d: %+v", i, s)
		}
	}
	return nil
}

// WidthDesign is the result of hot-spot-aware channel width modulation
// (§II-C "Heat transfer structure modulation"): per-segment widths plus
// the hydraulic figures of the modulated design and of the uniform
// baseline that uses the narrowest (hot-spot) width everywhere.
type WidthDesign struct {
	Widths []float64 // chosen width per segment (m)

	// Modulated and Uniform hold the per-channel pressure drop (Pa) and
	// hydraulic pumping power (W, per channel) of the two designs at the
	// design flow rate.
	ModulatedDP, UniformDP     float64
	ModulatedPump, UniformPump float64
	PressureImprovement        float64 // UniformDP / ModulatedDP
	PumpImprovement            float64 // UniformPump / ModulatedPump
}

// DesignWidths performs hot-spot-aware width modulation for a channel
// array: for each segment it selects the *widest* channel width within
// [wMin, wMax] whose effective footprint HTC still holds the local wall
// superheat q″/h_eff at or below dTMax (the paper: "the maximal channel
// width ... should only be reduced at locations where the maximal junction
// temperature would be exceeded").
//
// height is the cavity height, pitch the channel pitch, qCh the
// per-channel flow rate, and f the coolant. The uniform baseline applies
// the narrowest selected width along the entire length; its pressure drop
// and pumping power define the improvement factors (≈2 for the paper's
// width-modulation case).
func DesignWidths(segs []Segment, height, pitch, wMin, wMax float64, f fluids.Fluid, qCh, dTMax float64) (*WidthDesign, error) {
	if err := validateSegments(segs); err != nil {
		return nil, err
	}
	if wMin <= 0 || wMax <= wMin || wMax >= pitch || height <= 0 || qCh <= 0 || dTMax <= 0 {
		return nil, fmt.Errorf("microchannel: invalid modulation parameters wMin=%g wMax=%g pitch=%g", wMin, wMax, pitch)
	}
	heff := func(w float64) float64 {
		c := Channel{W: w, H: height, L: 1}
		per := 2 * (w + height)
		return c.HTC(f) * per / pitch / 2
	}
	if heff(wMin) < heff(wMax) {
		return nil, errors.New("microchannel: h_eff not decreasing in width; modulation assumption violated")
	}
	d := &WidthDesign{Widths: make([]float64, len(segs))}
	minW := wMax
	for i, s := range segs {
		need := s.Flux / dTMax // required h_eff
		var w float64
		switch {
		case heff(wMax) >= need:
			w = wMax
		case heff(wMin) < need:
			return nil, fmt.Errorf("microchannel: segment %d flux %.3g W/m² unreachable even at wMin", i, s.Flux)
		default:
			// Bisect: h_eff decreases with width.
			lo, hi := wMin, wMax
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				if heff(mid) >= need {
					lo = mid
				} else {
					hi = mid
				}
			}
			w = lo
		}
		d.Widths[i] = w
		if w < minW {
			minW = w
		}
	}
	dpOf := func(w, l float64) float64 {
		return Channel{W: w, H: height, L: l}.PressureDrop(f, qCh)
	}
	for i, s := range segs {
		d.ModulatedDP += dpOf(d.Widths[i], s.Len)
		d.UniformDP += dpOf(minW, s.Len)
	}
	d.ModulatedPump = d.ModulatedDP * qCh
	d.UniformPump = d.UniformDP * qCh
	if d.ModulatedDP > 0 {
		d.PressureImprovement = d.UniformDP / d.ModulatedDP
		d.PumpImprovement = d.UniformPump / d.ModulatedPump
	}
	return d, nil
}

// DensityDesign is the result of pin-fin density modulation: per-segment
// lattice scale factors (1 = dense hot-spot lattice; larger = sparser) and
// the hydraulic comparison against the uniformly dense baseline. The
// paper reports pumping-power improvements up to a factor of ~5 for
// density-modulated pin-fin cavities.
type DensityDesign struct {
	Scales []float64

	ModulatedDP, UniformDP     float64
	ModulatedPump, UniformPump float64
	PressureImprovement        float64
	PumpImprovement            float64
}

// DesignDensity modulates the pin lattice density per segment: each
// segment gets the *sparsest* lattice (largest pitch scale in
// [1, maxScale]) whose effective HTC still meets q″/dTMax. base describes
// the dense lattice used at hot spots; q is the total cavity flow rate.
func DesignDensity(segs []Segment, base PinFinArray, maxScale float64, f fluids.Fluid, q, dTMax float64) (*DensityDesign, error) {
	if err := validateSegments(segs); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if maxScale <= 1 || q <= 0 || dTMax <= 0 {
		return nil, fmt.Errorf("microchannel: invalid density parameters maxScale=%g q=%g", maxScale, q)
	}
	scaled := func(s float64, along float64) PinFinArray {
		p := base
		p.St *= s
		p.Sl *= s
		p.Along = along
		return p
	}
	heff := func(s float64) float64 {
		return scaled(s, base.Sl).EffectiveHTC(f, q)
	}
	if heff(1) < heff(maxScale) {
		return nil, errors.New("microchannel: pin h_eff not decreasing with sparsity")
	}
	d := &DensityDesign{Scales: make([]float64, len(segs))}
	for i, seg := range segs {
		need := seg.Flux / dTMax
		var s float64
		switch {
		case heff(maxScale) >= need:
			s = maxScale
		case heff(1) < need:
			return nil, fmt.Errorf("microchannel: segment %d flux %.3g W/m² unreachable at dense lattice", i, seg.Flux)
		default:
			lo, hi := 1.0, maxScale
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				if heff(mid) >= need {
					lo = mid
				} else {
					hi = mid
				}
			}
			s = lo
		}
		d.Scales[i] = s
	}
	for i, seg := range segs {
		d.ModulatedDP += scaled(d.Scales[i], seg.Len).PressureDrop(f, q)
		d.UniformDP += scaled(1, seg.Len).PressureDrop(f, q)
	}
	d.ModulatedPump = d.ModulatedDP * q
	d.UniformPump = d.UniformDP * q
	if d.ModulatedDP > 0 {
		d.PressureImprovement = d.UniformDP / d.ModulatedDP
		d.PumpImprovement = d.UniformPump / d.ModulatedPump
	}
	return d, nil
}

// HotspotProfile builds the canonical three-segment profile used by the
// modulation experiments: background / hot spot / background, with the hot
// spot covering hotFrac of the total length and carrying hotFlux.
func HotspotProfile(total float64, hotFrac, bgFlux, hotFlux float64) []Segment {
	hf := math.Min(math.Max(hotFrac, 0.01), 0.98)
	side := total * (1 - hf) / 2
	return []Segment{
		{Len: side, Flux: bgFlux},
		{Len: total * hf, Flux: hotFlux},
		{Len: side, Flux: bgFlux},
	}
}
