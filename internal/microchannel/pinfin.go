package microchannel

import (
	"fmt"
	"math"

	"repro/internal/fluids"
)

// PinArrangement selects the pin-fin lattice.
type PinArrangement int

// Supported arrangements.
const (
	InLine PinArrangement = iota
	Staggered
)

// String implements fmt.Stringer.
func (a PinArrangement) String() string {
	if a == Staggered {
		return "staggered"
	}
	return "in-line"
}

// PinShape selects the pin cross-section. The paper considers circular,
// square and drop-shaped pins; shape enters through drag and heat-transfer
// multipliers relative to the circular baseline.
type PinShape int

// Supported pin shapes.
const (
	Circular PinShape = iota
	Square
	DropShape
)

// String implements fmt.Stringer.
func (s PinShape) String() string {
	switch s {
	case Square:
		return "square"
	case DropShape:
		return "drop"
	default:
		return "circular"
	}
}

// dragMul and htcMul encode the relative behaviour of pin shapes: square
// pins shed stronger wakes (more drag, slightly more transfer); drop
// shapes are streamlined (much less drag, slightly less transfer).
func (s PinShape) dragMul() float64 {
	switch s {
	case Square:
		return 1.35
	case DropShape:
		return 0.55
	default:
		return 1.0
	}
}

func (s PinShape) htcMul() float64 {
	switch s {
	case Square:
		return 1.08
	case DropShape:
		return 0.92
	default:
		return 1.0
	}
}

// PinFinArray models a micro pin-fin heat-transfer cavity: pins of
// diameter D and height H (the cavity height) on a lattice with
// transverse pitch St and longitudinal pitch Sl, covering a die of width
// `Across` (m, normal to flow) and length `Along` (m, streamwise).
type PinFinArray struct {
	D, H        float64
	St, Sl      float64
	Across      float64
	Along       float64
	Arrangement PinArrangement
	Shape       PinShape
}

// Validate checks geometric consistency.
func (p PinFinArray) Validate() error {
	if p.D <= 0 || p.H <= 0 || p.St <= p.D || p.Sl <= 0 || p.Across <= 0 || p.Along <= 0 {
		return fmt.Errorf("microchannel: invalid pin-fin geometry %+v", p)
	}
	return nil
}

// Rows returns the number of pin rows encountered by the flow.
func (p PinFinArray) Rows() int { return int(math.Max(1, p.Along/p.Sl)) }

// PinsPerRow returns the number of pins across the die in one row.
func (p PinFinArray) PinsPerRow() int { return int(math.Max(1, p.Across/p.St)) }

// MaxVelocity returns the velocity in the minimum flow cross-section for
// total flow q (m³/s). For in-line lattices the minimum gap is the
// transverse gap; staggered lattices can pinch the diagonal gap too, but
// for the pitch ratios of interest the transverse gap governs.
func (p PinFinArray) MaxVelocity(q float64) float64 {
	aFront := p.Across * p.H          // frontal area
	uInf := q / aFront                // approach velocity
	return uInf * p.St / (p.St - p.D) // continuity through the min gap
}

// Reynolds returns the pin Reynolds number ρ·u_max·D/µ.
func (p PinFinArray) Reynolds(f fluids.Fluid, q float64) float64 {
	return f.Rho * p.MaxVelocity(q) * p.D / f.Mu
}

// euler returns the per-row Euler number ΔP_row/(ρ·u_max²/2) using a
// low-Reynolds tube-bank correlation (Žukauskas form Eu = C/Re + C2).
// Staggered banks present every row to the flow and pay a markedly higher
// drag; in-line banks let downstream rows draft in the wakes of upstream
// ones — exactly the effect behind the paper's conclusion that circular
// in-line pins give low pressure drop at acceptable heat transfer.
func (p PinFinArray) euler(re float64) float64 {
	var c1, c2 float64
	switch p.Arrangement {
	case Staggered:
		c1, c2 = 64.0, 0.75
	default:
		c1, c2 = 36.0, 0.36
	}
	return (c1/math.Max(re, 1e-9) + c2) * p.Shape.dragMul()
}

// PressureDrop returns the array pressure drop (Pa) at total flow q.
func (p PinFinArray) PressureDrop(f fluids.Fluid, q float64) float64 {
	u := p.MaxVelocity(q)
	re := p.Reynolds(f, q)
	return float64(p.Rows()) * p.euler(re) * 0.5 * f.Rho * u * u
}

// Nu returns the row-averaged pin Nusselt number via a Žukauskas-type
// low-Re correlation Nu = C·Re^m·Pr^0.36. Staggered banks mix better
// (higher C): they buy ~15–25 % more transfer for ~2× the drag.
func (p PinFinArray) Nu(f fluids.Fluid, q float64) float64 {
	re := math.Max(p.Reynolds(f, q), 1e-9)
	var c, m float64
	switch p.Arrangement {
	case Staggered:
		c, m = 0.90, 0.40
	default:
		c, m = 0.80, 0.40
	}
	return c * math.Pow(re, m) * math.Pow(f.Prandtl(), 0.36) * p.Shape.htcMul()
}

// HTC returns the pin-surface heat-transfer coefficient (W/m²K).
func (p PinFinArray) HTC(f fluids.Fluid, q float64) float64 {
	return p.Nu(f, q) * f.K / p.D
}

// WettedAreaPerFootprint returns pin lateral surface per die footprint.
func (p PinFinArray) WettedAreaPerFootprint() float64 {
	pinArea := math.Pi * p.D * p.H
	cellArea := p.St * p.Sl
	return pinArea / cellArea
}

// EffectiveHTC returns the footprint-referred HTC of the pin cavity,
// comparable with Array.EffectiveHTC.
func (p PinFinArray) EffectiveHTC(f fluids.Fluid, q float64) float64 {
	return p.HTC(f, q) * p.WettedAreaPerFootprint() / 2
}

// PumpingPower returns ΔP·q (W).
func (p PinFinArray) PumpingPower(f fluids.Fluid, q float64) float64 {
	return p.PressureDrop(f, q) * q
}

// COP returns the "thermal performance per pumping watt" figure of merit
// h_eff/P_pump used to rank structures; higher is better.
func (p PinFinArray) COP(f fluids.Fluid, q float64) float64 {
	pp := p.PumpingPower(f, q)
	if pp <= 0 {
		return math.Inf(1)
	}
	return p.EffectiveHTC(f, q) / pp
}

// StructureComparison summarises one geometry at one operating point; the
// §II-C exploration (experiment C3) tabulates these across flow rates.
type StructureComparison struct {
	Label        string
	PressureDrop float64 // Pa
	EffHTC       float64 // W/m²K footprint-referred
	PumpPower    float64 // W
}

// ComparePinArrangements evaluates circular in-line vs staggered pins of
// identical size/pitch at total flow q, returning both summaries. The
// paper's finding — in-line gives lower pressure drop at acceptable
// convective transfer — corresponds to inline.PressureDrop <
// staggered.PressureDrop with EffHTC within ~25 %.
func ComparePinArrangements(base PinFinArray, f fluids.Fluid, q float64) (inline, staggered StructureComparison, err error) {
	if err = base.Validate(); err != nil {
		return
	}
	il := base
	il.Arrangement = InLine
	st := base
	st.Arrangement = Staggered
	inline = StructureComparison{
		Label:        "circular in-line",
		PressureDrop: il.PressureDrop(f, q),
		EffHTC:       il.EffectiveHTC(f, q),
		PumpPower:    il.PumpingPower(f, q),
	}
	staggered = StructureComparison{
		Label:        "circular staggered",
		PressureDrop: st.PressureDrop(f, q),
		EffHTC:       st.EffectiveHTC(f, q),
		PumpPower:    st.PumpingPower(f, q),
	}
	return
}
