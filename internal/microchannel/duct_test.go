package microchannel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fluids"
	"repro/internal/units"
)

func tableIChannelForTest() Channel { return TableIChannel(10e-3) }

func TestHydraulicDiameter(t *testing.T) {
	c := tableIChannelForTest() // 50 x 100 um
	want := 2.0 * 50e-6 * 100e-6 / (150e-6)
	if !units.ApproxEqual(c.Dh(), want, 1e-12) {
		t.Errorf("Dh = %v, want %v", c.Dh(), want)
	}
	// Square duct: Dh = side.
	sq := Channel{W: 80e-6, H: 80e-6, L: 1e-2}
	if !units.ApproxEqual(sq.Dh(), 80e-6, 1e-12) {
		t.Errorf("square Dh = %v, want 80e-6", sq.Dh())
	}
}

func TestShahLondonLimits(t *testing.T) {
	// Square duct: fRe = 14.23, Nu_H1 = 3.61 (Shah & London table values).
	sq := Channel{W: 1e-4, H: 1e-4, L: 1}
	if got := sq.FRe(); math.Abs(got-14.23) > 0.15 {
		t.Errorf("square fRe = %v, want 14.23", got)
	}
	if got := sq.Nu(); math.Abs(got-3.61) > 0.1 {
		t.Errorf("square Nu = %v, want 3.61", got)
	}
	// Parallel-plate limit (aspect -> 0): fRe -> 24, Nu -> 8.235.
	pp := Channel{W: 1e-6, H: 1, L: 1}
	if got := pp.FRe(); math.Abs(got-24) > 0.05 {
		t.Errorf("plate fRe = %v, want 24", got)
	}
	if got := pp.Nu(); math.Abs(got-8.235) > 0.05 {
		t.Errorf("plate Nu = %v, want 8.235", got)
	}
}

func TestTableIOperatingPointIsLaminar(t *testing.T) {
	// Table I: 50 um channels at 0.15 mm pitch across a 10 mm die, up to
	// 32.3 ml/min per cavity. The design must be laminar.
	arr, err := TableIArray(11.5e-3, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	if arr.N < 60 || arr.N > 70 {
		t.Errorf("channel count = %d, want ~66", arr.N)
	}
	w := fluids.Water()
	qMax := units.MlPerMinToM3PerS(32.3)
	re := arr.Ch.Reynolds(w, arr.PerChannelFlow(qMax))
	if re <= 0 || re > 300 {
		t.Errorf("Re at max flow = %v, want laminar (<300)", re)
	}
}

func TestPressureDropScalesLinearlyWithFlow(t *testing.T) {
	// Laminar flow: dP proportional to Q.
	c := tableIChannelForTest()
	w := fluids.Water()
	q := 5e-9
	dp1 := c.PressureDrop(w, q)
	dp2 := c.PressureDrop(w, 2*q)
	if !units.ApproxEqual(dp2, 2*dp1, 1e-9) {
		t.Errorf("dP(2q)=%v != 2*dP(q)=%v", dp2, 2*dp1)
	}
}

func TestPressureDropPlausibleMagnitude(t *testing.T) {
	// Agostini: pressure drops below ~0.9 bar at full power. Our Table-I
	// water design at max flow should produce a fraction of a bar.
	arr, _ := TableIArray(11.5e-3, 10e-3)
	w := fluids.Water()
	dp := arr.PressureDrop(w, units.MlPerMinToM3PerS(32.3))
	if dp < 1e3 || dp > 2e5 {
		t.Errorf("cavity dP = %v Pa, want ~1e4-1e5 (fraction of a bar)", dp)
	}
}

func TestHydraulicResistanceConsistent(t *testing.T) {
	c := tableIChannelForTest()
	w := fluids.Water()
	q := 3e-9
	if got, want := c.HydraulicResistance(w)*q, c.PressureDrop(w, q); !units.ApproxEqual(got, want, 1e-9) {
		t.Errorf("R*q = %v, dP = %v", got, want)
	}
}

func TestHTCMagnitude(t *testing.T) {
	// h = Nu k / Dh with water in a 66.7um duct: ~4.4*0.6/6.7e-5 ≈ 4e4.
	c := tableIChannelForTest()
	h := c.HTC(fluids.Water())
	if h < 2e4 || h > 8e4 {
		t.Errorf("duct HTC = %v W/m²K, want ~4e4", h)
	}
}

func TestBulkTemperatureRiseMatchesPaper(t *testing.T) {
	// §II-C: "the fluid temperature increase from inlet to outlet in
	// single-phase cooling is significant (e.g. 40 K in case of water as
	// coolant at 130 W power dissipation per tier)". At what flow does
	// 130 W produce 40 K? mdot*cp = 130/40 = 3.25 W/K -> Q ≈ 46.8 ml/min.
	// Within the Table-I range (<= 32.3 ml/min) the rise must EXCEED 40 K
	// at 130 W, confirming the paper's "significant" observation.
	arr, _ := TableIArray(11.5e-3, 10e-3)
	w := fluids.Water()
	rise := arr.BulkTemperatureRise(w, 130, units.MlPerMinToM3PerS(32.3))
	if rise < 40 {
		t.Errorf("bulk rise at 130 W, max Table-I flow = %v K, want >= 40 K", rise)
	}
	if rise > 120 {
		t.Errorf("bulk rise = %v K implausibly large", rise)
	}
}

func TestDielectricWorseThanWater(t *testing.T) {
	// §II-C: dielectric fluids degrade inter-tier performance vs water.
	arr, _ := TableIArray(11.5e-3, 10e-3)
	q := units.MlPerMinToM3PerS(20)
	w, d := fluids.Water(), fluids.Dielectric()
	if arr.BulkTemperatureRise(d, 100, q) <= arr.BulkTemperatureRise(w, 100, q) {
		t.Error("dielectric should heat up more than water at equal flow")
	}
	if arr.EffectiveHTC(d) >= arr.EffectiveHTC(w) {
		t.Error("dielectric effective HTC should be below water's")
	}
}

func TestNanofluidImprovesHTCButCostsPressure(t *testing.T) {
	arr, _ := TableIArray(11.5e-3, 10e-3)
	w := fluids.Water()
	nf, err := fluids.Nanofluid(w, fluids.Alumina(), 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if arr.EffectiveHTC(nf) <= arr.EffectiveHTC(w) {
		t.Error("nanofluid should raise effective HTC")
	}
	q := units.MlPerMinToM3PerS(20)
	if arr.PressureDrop(nf, q) <= arr.PressureDrop(w, q) {
		t.Error("nanofluid viscosity should raise pressure drop")
	}
}

func TestEffectiveHTCPositiveAndBounded(t *testing.T) {
	f := func(wRaw, hRaw float64) bool {
		wm := 20e-6 + math.Mod(math.Abs(wRaw), 80e-6)
		hm := 40e-6 + math.Mod(math.Abs(hRaw), 160e-6)
		if math.IsNaN(wm) || math.IsNaN(hm) {
			return true
		}
		arr, err := NewArray(Channel{W: wm, H: hm, L: 1e-2}, wm+50e-6, 1e-2)
		if err != nil {
			return true
		}
		h := arr.EffectiveHTC(fluids.Water())
		return h > 0 && h < 1e7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(Channel{W: 50e-6, H: 100e-6, L: 1e-2}, 40e-6, 1e-2); err == nil {
		t.Error("pitch < width must be rejected")
	}
	if _, err := NewArray(Channel{W: -1, H: 100e-6, L: 1e-2}, 150e-6, 1e-2); err == nil {
		t.Error("negative width must be rejected")
	}
	if _, err := NewArray(Channel{W: 50e-6, H: 100e-6, L: 1e-2}, 150e-6, 100e-6); err == nil {
		t.Error("die narrower than one pitch must be rejected")
	}
}

func TestPumpingPowerIdentity(t *testing.T) {
	arr, _ := TableIArray(11.5e-3, 10e-3)
	w := fluids.Water()
	q := units.MlPerMinToM3PerS(25)
	want := arr.PressureDrop(w, q) * q
	if got := arr.PumpingPower(w, q); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("pump power = %v, want %v", got, want)
	}
}

func TestThermalEntranceLengthShortAtTableIFlows(t *testing.T) {
	// At Table-I flows the entrance length should be a modest fraction of
	// the channel, justifying the fully developed Nu assumption.
	arr, _ := TableIArray(11.5e-3, 10e-3)
	w := fluids.Water()
	lt := arr.Ch.ThermalLength(w, arr.PerChannelFlow(units.MlPerMinToM3PerS(32.3)))
	if lt > arr.Ch.L {
		t.Logf("entrance length %v exceeds channel %v at max flow: Nu_fd is conservative", lt, arr.Ch.L)
	}
	if lt <= 0 {
		t.Error("entrance length must be positive")
	}
}
