package microchannel

import (
	"math"
	"testing"

	"repro/internal/fluids"
	"repro/internal/units"
)

func TestHotspotProfile(t *testing.T) {
	segs := HotspotProfile(10e-3, 0.2, 2e4, 2.5e6)
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3", len(segs))
	}
	total := 0.0
	for _, s := range segs {
		total += s.Len
	}
	if !units.ApproxEqual(total, 10e-3, 1e-12) {
		t.Errorf("profile length = %v, want 10mm", total)
	}
	if segs[1].Flux <= segs[0].Flux {
		t.Error("hot segment must carry the higher flux")
	}
}

func TestWidthModulationImprovement(t *testing.T) {
	// §II-C claim: hot-spot-aware width modulation of micro-channels
	// improves pressure drop by roughly a factor of 2.
	w := fluids.Water()
	segs := HotspotProfile(11.5e-3, 0.15, 15e4, 1.2e6)
	d, err := DesignWidths(segs, 100e-6, 150e-6, 25e-6, 100e-6, w, 6e-9, 35)
	if err != nil {
		t.Fatal(err)
	}
	// Hot segment must be narrower than background segments.
	if d.Widths[1] >= d.Widths[0] {
		t.Errorf("hot width %v should be below background %v", d.Widths[1], d.Widths[0])
	}
	if d.PressureImprovement < 1.4 || d.PressureImprovement > 6 {
		t.Errorf("pressure improvement = %v, want ~2 (1.4-6 band)", d.PressureImprovement)
	}
	// With equal flow, pump improvement equals pressure improvement.
	if !units.ApproxEqual(d.PumpImprovement, d.PressureImprovement, 1e-9) {
		t.Errorf("pump %v != pressure %v at equal flow", d.PumpImprovement, d.PressureImprovement)
	}
}

func TestWidthModulationUnreachableFlux(t *testing.T) {
	w := fluids.Water()
	segs := []Segment{{Len: 1e-3, Flux: 1e9}} // absurd flux
	if _, err := DesignWidths(segs, 100e-6, 150e-6, 25e-6, 100e-6, w, 6e-9, 10); err == nil {
		t.Error("expected unreachable-flux error")
	}
}

func TestWidthModulationUniformWhenFluxUniform(t *testing.T) {
	w := fluids.Water()
	segs := []Segment{{Len: 3e-3, Flux: 3e5}, {Len: 3e-3, Flux: 3e5}}
	d, err := DesignWidths(segs, 100e-6, 150e-6, 25e-6, 100e-6, w, 6e-9, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Widths[0]-d.Widths[1]) > 1e-12 {
		t.Errorf("uniform flux should give uniform widths: %v", d.Widths)
	}
	if !units.ApproxEqual(d.PressureImprovement, 1, 1e-9) {
		t.Errorf("no hot spot -> no improvement, got %v", d.PressureImprovement)
	}
}

func TestWidthModulationParameterValidation(t *testing.T) {
	w := fluids.Water()
	segs := HotspotProfile(1e-2, 0.2, 1e5, 1e6)
	cases := []struct {
		name                           string
		h, pitch, wMin, wMax, q, dtmax float64
	}{
		{"wMin<=0", 1e-4, 150e-6, 0, 1e-4, 1e-9, 10},
		{"wMax<=wMin", 1e-4, 150e-6, 5e-5, 5e-5, 1e-9, 10},
		{"wMax>=pitch", 1e-4, 150e-6, 5e-5, 2e-4, 1e-9, 10},
		{"q<=0", 1e-4, 150e-6, 2e-5, 1e-4, 0, 10},
		{"dT<=0", 1e-4, 150e-6, 2e-5, 1e-4, 1e-9, 0},
	}
	for _, c := range cases {
		if _, err := DesignWidths(segs, c.h, c.pitch, c.wMin, c.wMax, w, c.q, c.dtmax); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDensityModulationImprovement(t *testing.T) {
	// §II-C claim: density modulation of pin-fin arrays yields pumping
	// power improvements up to a factor of ~5.
	w := fluids.Water()
	base := PinFinArray{
		D: 50e-6, H: 100e-6, St: 120e-6, Sl: 120e-6,
		Across: 10e-3, Along: 11.5e-3,
		Arrangement: InLine, Shape: Circular,
	}
	q := units.MlPerMinToM3PerS(20)
	// Scale the required superheat so the dense lattice is needed only at
	// the hot spot.
	hotNeed := base.EffectiveHTC(w, q) * 0.95
	segs := HotspotProfile(11.5e-3, 0.15, hotNeed*0.12*20, hotNeed*20)
	d, err := DesignDensity(segs, base, 4.0, w, q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Scales[1] >= d.Scales[0] {
		t.Errorf("hot lattice scale %v should be denser (smaller) than background %v",
			d.Scales[1], d.Scales[0])
	}
	if d.PumpImprovement < 2.5 || d.PumpImprovement > 20 {
		t.Errorf("pump improvement = %v, want ~5 (2.5-20 band)", d.PumpImprovement)
	}
}

func TestDensityModulationValidation(t *testing.T) {
	w := fluids.Water()
	base := PinFinArray{D: 50e-6, H: 100e-6, St: 120e-6, Sl: 120e-6,
		Across: 10e-3, Along: 11.5e-3}
	segs := HotspotProfile(1e-2, 0.2, 1e4, 1e5)
	if _, err := DesignDensity(segs, base, 1.0, w, 1e-8, 10); err == nil {
		t.Error("maxScale <= 1 must be rejected")
	}
	if _, err := DesignDensity(nil, base, 2.0, w, 1e-8, 10); err == nil {
		t.Error("empty segments must be rejected")
	}
}

func TestEmptySegmentsRejected(t *testing.T) {
	if err := validateSegments(nil); err == nil {
		t.Error("nil segments must fail")
	}
	if err := validateSegments([]Segment{{Len: -1, Flux: 0}}); err == nil {
		t.Error("negative length must fail")
	}
}
