package repro

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/plan"
	"repro/internal/sweep"
)

// TestPlannedSweepByteIdentical is the planner's acceptance criterion:
// with the real cost-based planner attached — built-in defaults and a
// committed-snapshot model alike — every scenario's metrics are
// byte-identical to the unplanned engine, across worker counts and
// engine batch widths, on the golden transient-sweep corpus. The
// planner may only turn result-invariant knobs, so "planned" must mean
// "same bytes, sooner".
func TestPlannedSweepByteIdentical(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "sweep-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("sweep golden corpus holds %d cases, want >= 6", len(files))
	}
	sort.Strings(files)

	models := map[string]*plan.CostModel{"defaults": plan.DefaultModel()}
	if m, err := plan.LoadLatest("."); err == nil {
		models[m.Source()] = m
	}

	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var c struct {
				Kind  string          `json:"kind"`
				Sweep []jobs.Scenario `json:"sweep"`
			}
			if err := json.Unmarshal(raw, &c); err != nil {
				t.Fatal(err)
			}
			if c.Kind != "transient-sweep" {
				t.Fatalf("sweep-*.json of kind %q", c.Kind)
			}

			ref, err := (&sweep.Engine{Pool: jobs.NewPool(1)}).
				RunTransient(context.Background(), c.Sweep, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]byte, len(ref.Results))
			for i, r := range ref.Results {
				if r.Err != nil {
					t.Fatalf("reference scenario %d: %v", i, r.Err)
				}
				if want[i], err = json.Marshal(r.Metrics); err != nil {
					t.Fatal(err)
				}
			}

			for name, model := range models {
				for _, tc := range []struct{ width, workers int }{
					{1, 2}, {32, 1}, {0, 3},
				} {
					eng := &sweep.Engine{
						Pool:       jobs.NewPool(tc.workers),
						BatchWidth: tc.width,
						Planner:    plan.New(model),
					}
					rep, err := eng.RunTransient(context.Background(), c.Sweep, nil)
					if err != nil {
						t.Fatalf("model=%s width=%d: %v", name, tc.width, err)
					}
					if rep.Plan != nil {
						t.Fatalf("plain planned run carries a plan report")
					}
					for i, r := range rep.Results {
						if r.Err != nil {
							t.Fatalf("model=%s width=%d scenario %d: %v", name, tc.width, i, r.Err)
						}
						got, err := json.Marshal(r.Metrics)
						if err != nil {
							t.Fatal(err)
						}
						if string(got) != string(want[i]) {
							t.Fatalf("model=%s width=%d workers=%d scenario %d: planned metrics differ from unplanned",
								name, tc.width, tc.workers, i)
						}
					}
				}
			}
		})
	}
}

// TestPlannedSweepExplainedDeterministicPlan: the explained report's
// decision and candidate tables are deterministic — two runs over the
// same batch produce identical plan blocks once the nondeterministic
// wall times are zeroed.
func TestPlannedSweepExplainedDeterministicPlan(t *testing.T) {
	scenarios := []jobs.Scenario{}
	for seed := int64(1); seed <= 4; seed++ {
		scenarios = append(scenarios, jobs.Scenario{
			Tiers: 2, Cooling: "liquid", Policy: "LC_FUZZY", Workload: "web",
			Steps: 2, Grid: 8, Seed: seed, Solver: "direct",
		})
	}
	// One planner for both runs: self-calibration is single-flighted per
	// model, so the measured coefficients are fixed after the first plan
	// and determinism is a property of the planner, as on a live server.
	pl := plan.New(plan.DefaultModel())
	planJSON := func() string {
		eng := &sweep.Engine{Pool: jobs.NewPool(2), Planner: pl}
		rep, err := eng.RunTransientExplained(context.Background(), scenarios, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Plan == nil || !rep.Plan.Planned {
			t.Fatalf("explained planned run without plan block")
		}
		for i := range rep.Plan.Groups {
			rep.Plan.Groups[i].ActualNs = 0
		}
		raw, err := json.Marshal(rep.Plan)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	first := planJSON()
	if second := planJSON(); second != first {
		t.Fatalf("plan block nondeterministic:\n%s\nvs\n%s", first, second)
	}
	// The explain payload names every candidate the ISSUE enumerates:
	// widths, both backends as advisory rows, the ordering alternatives.
	for _, wantSub := range []string{
		`"batch_width":1`, `"batch_width":8`, `"batch_width":16`, `"batch_width":32`,
		`"backend":"bicgstab"`, `"backend":"gmres"`, `"ordering":"amd"`, `"ordering":"nd"`,
		`"feasible":true`, `"feasible":false`, `"chosen":true`,
	} {
		if !strings.Contains(first, wantSub) {
			t.Fatalf("plan block missing %s:\n%s", wantSub, first)
		}
	}
}

// TestPlannedSweepCorpusCoverage keeps the golden corpus honest about
// the planner's decision space: at least one corpus case must exercise
// each cooling mode, so the byte-identity sweep above covers both the
// liquid (multi-LHS) and air (two-LHS) costing paths.
func TestPlannedSweepCorpusCoverage(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "sweep-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var c struct {
			Sweep []jobs.Scenario `json:"sweep"`
		}
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatal(err)
		}
		for _, s := range c.Sweep {
			seen[s.Normalized().Cooling] = true
		}
	}
	for _, cooling := range []string{"air", "liquid"} {
		if !seen[cooling] {
			t.Fatalf("no golden sweep case exercises %s cooling", cooling)
		}
	}
}
