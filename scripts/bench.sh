#!/usr/bin/env sh
# bench.sh — run the solver/scenario/sweep benchmark suite and emit a
# machine-readable snapshot (default BENCH_PR4.json) so the performance
# trajectory of the repo is tracked in-tree, or — with --check — rerun
# the benchmarks pinned in the latest committed snapshot and fail when
# any ns/op regressed past the tolerance (the CI bench-gate job).
#
# Usage:
#   scripts/bench.sh [output.json]          # snapshot mode
#   scripts/bench.sh --check [base.json]    # regression gate against the
#                                           # latest BENCH_*.json (or base)
#   BENCHTIME=2s scripts/bench.sh           # longer sampling
#   BENCH='TransientStep' scripts/bench.sh  # subset (snapshot mode)
#   BENCH_GATE_TOLERANCE=1.5 scripts/bench.sh --check   # looser gate
set -eu
cd "$(dirname "$0")/.."

mode=snapshot
if [ "${1:-}" = "--check" ]; then
    mode=check
    shift
fi

benchtime="${BENCHTIME:-1s}"
tolerance="${BENCH_GATE_TOLERANCE:-1.35}"

# emit_json parses `go test -bench` output on stdin into the snapshot
# format: one benchmark per line, so the gate can re-parse it with awk
# alone (no jq dependency). Repeated samples of one benchmark (-count N)
# collapse to the fastest — the noise-robust statistic the gate compares.
emit_json() {
    awk -v benchtime="$1" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(",\"bytes_per_op\":%s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $i)
    }
    if (name in best) {
        if ($3 + 0 < best[name]) { best[name] = $3 + 0; lines[slot[name]] = line "}" }
        next
    }
    best[name] = $3 + 0
    slot[name] = n
    lines[n++] = line "}"
}
END {
    printf("{\n  \"goos\":\"%s\",\"goarch\":\"%s\",\"cpu\":\"%s\",\"benchtime\":\"%s\",\n", goos, goarch, cpu, benchtime)
    printf("  \"benchmarks\":[\n")
    for (i = 0; i < n; i++) printf("  %s%s\n", lines[i], i < n-1 ? "," : "")
    printf("  ]\n}\n")
}'
}

if [ "$mode" = "snapshot" ]; then
    out="${1:-BENCH_PR4.json}"
    pattern="${BENCH:-TransientStep|CompactSteady|SteadyDirect|SolverBiCGSTAB|SolverGMRES|SolverGMRESWithRCMILU|PoolStudySweep|CacheHit|SweepShared|SweepUnshared|TransientSweepBatched|TransientSweepUnbatched|SolveBlock$}"
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 ./internal/mat . | tee "$tmp"
    emit_json "$benchtime" < "$tmp" > "$out"
    echo "wrote $out"
    exit 0
fi

# --- check mode: the benchmark-regression gate ---

base="${1:-$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)}"
if [ -z "$base" ] || [ ! -f "$base" ]; then
    echo "bench-gate: no BENCH_*.json snapshot to check against" >&2
    exit 2
fi
echo "bench-gate: checking against $base (tolerance ${tolerance}x, benchtime $benchtime)"

# The -bench pattern matches the top-level benchmark names (sub-benchmark
# names like PoolStudySweep/sequential select their parent); comparison
# below still happens per full pinned name.
names="$(awk -F'"' '/"name":/ {split($4, a, "/"); print a[1]}' "$base" | sort -u)"
if [ -z "$names" ]; then
    echo "bench-gate: $base pins no benchmarks" >&2
    exit 2
fi
pattern="^($(printf '%s' "$names" | tr '\n' '|'))$"

tmp="$(mktemp)"
fresh="${BENCH_GATE_OUT:-bench-gate.json}"
count="${BENCH_GATE_COUNT:-3}"
trap 'rm -f "$tmp"' EXIT
# -count 3, fastest sample per benchmark: a single descheduled run on a
# noisy shared runner must not trip the gate.
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" ./internal/mat . | tee "$tmp"
emit_json "$benchtime" < "$tmp" > "$fresh"
echo "wrote $fresh"

awk -F'"' -v tol="$tolerance" '
FNR == 1 { file++ }
/"name":/ {
    name = $4
    rest = $0
    sub(/.*"ns_per_op":/, "", rest)
    sub(/[,}].*/, "", rest)
    if (file == 1) { old[name] = rest + 0 }
    else           { new[name] = rest + 0 }
}
END {
    bad = 0
    for (name in old) {
        if (!(name in new)) {
            printf("bench-gate: FAIL %-45s pinned in snapshot but not rerun\n", name)
            bad++
            continue
        }
        ratio = (old[name] > 0) ? new[name] / old[name] : 1
        status = (ratio > tol) ? "FAIL" : "ok"
        printf("bench-gate: %-4s %-45s %14.0f -> %14.0f ns/op (%.2fx)\n", status, name, old[name], new[name], ratio)
        if (ratio > tol) bad++
    }
    if (bad > 0) {
        printf("bench-gate: %d benchmark(s) regressed past %.2fx\n", bad, tol)
        exit 1
    }
    print "bench-gate: all pinned benchmarks within tolerance"
}' "$base" "$fresh"
