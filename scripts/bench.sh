#!/usr/bin/env sh
# bench.sh — run the solver/scenario/sweep benchmark suite and emit a
# machine-readable snapshot (default BENCH_PR3.json) so the performance
# trajectory of the repo is tracked in-tree.
#
# Usage:
#   scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh       # longer sampling
#   BENCH='TransientStep' scripts/bench.sh  # subset
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR3.json}"
benchtime="${BENCHTIME:-1s}"
pattern="${BENCH:-TransientStep|CompactSteady|SteadyDirect|SolverBiCGSTAB|SolverGMRES|SolverGMRESWithRCMILU|PoolStudySweep|CacheHit|SweepShared|SweepUnshared}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 . | tee "$tmp"

awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(",\"bytes_per_op\":%s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $i)
    }
    lines[n++] = line "}"
}
END {
    printf("{\n  \"goos\":\"%s\",\"goarch\":\"%s\",\"cpu\":\"%s\",\"benchtime\":\"%s\",\n", goos, goarch, cpu, benchtime)
    printf("  \"benchmarks\":[\n")
    for (i = 0; i < n; i++) printf("  %s%s\n", lines[i], i < n-1 ? "," : "")
    printf("  ]\n}\n")
}' "$tmp" > "$out"

echo "wrote $out"
