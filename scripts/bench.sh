#!/usr/bin/env sh
# bench.sh — run the solver/scenario/sweep benchmark suite and emit a
# machine-readable snapshot (default BENCH_PR7.json) so the performance
# trajectory of the repo is tracked in-tree, or — with --check — rerun
# the benchmarks pinned in the latest committed snapshot and fail when
# any ns/op, bytes/op or allocs/op regressed past the tolerance (the CI
# bench-gate job), or — with --profile — capture cpu/mem pprof profiles
# of the sweep benchmarks for offline analysis.
#
# Usage:
#   scripts/bench.sh [output.json]          # snapshot mode
#   scripts/bench.sh --check [base.json]    # regression gate against the
#                                           # latest BENCH_*.json (or base)
#   scripts/bench.sh --profile [outdir]     # pprof profiles (default
#                                           # bench-profiles/)
#   BENCHTIME=2s scripts/bench.sh           # longer sampling
#   BENCH='TransientStep' scripts/bench.sh  # subset (snapshot mode)
#   BENCH_GATE_TOLERANCE=1.5 scripts/bench.sh --check   # looser gate
set -eu
cd "$(dirname "$0")/.."

mode=snapshot
case "${1:-}" in
--check)
    mode=check
    shift
    ;;
--profile)
    mode=profile
    shift
    ;;
esac

benchtime="${BENCHTIME:-1s}"
tolerance="${BENCH_GATE_TOLERANCE:-1.35}"

# emit_json parses `go test -bench` output on stdin into the snapshot
# format: one benchmark per line, so the gate can re-parse it with awk
# alone (no jq dependency). Repeated samples of one benchmark (-count N)
# collapse to the fastest — the noise-robust statistic the gate compares.
emit_json() {
    awk -v benchtime="$1" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(",\"bytes_per_op\":%s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $i)
    }
    if (name in best) {
        if ($3 + 0 < best[name]) { best[name] = $3 + 0; lines[slot[name]] = line "}" }
        next
    }
    best[name] = $3 + 0
    slot[name] = n
    lines[n++] = line "}"
}
END {
    printf("{\n  \"goos\":\"%s\",\"goarch\":\"%s\",\"cpu\":\"%s\",\"benchtime\":\"%s\",\n", goos, goarch, cpu, benchtime)
    printf("  \"benchmarks\":[\n")
    for (i = 0; i < n; i++) printf("  %s%s\n", lines[i], i < n-1 ? "," : "")
    printf("  ]\n}\n")
}'
}

if [ "$mode" = "snapshot" ]; then
    out="${1:-BENCH_PR10.json}"
    pattern="${BENCH:-TransientStep|FlowChange|CompactSteady|SteadyDirect|SolverBiCGSTAB|SolverGMRES|SolverGMRESWithRCMILU|PoolStudySweep|CacheHit|SweepShared|SweepUnshared|TransientSweepBatched|TransientSweepUnbatched|SolveBlock$|StorePut$|StoreGet$|CacheHitDisk|FactorAMD|FactorND|SerialRefactor|ParallelRefactor|PlannedSweep$|UnplannedSweep$|ResultsQuery$|DisabledPoint$}"
    count="${BENCH_COUNT:-1}"
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    # With BENCH_COUNT > 1 the fastest sample per benchmark is kept —
    # pin a less noise-contaminated baseline before committing it.
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" ./internal/mat ./internal/fault . | tee "$tmp"
    emit_json "$benchtime" < "$tmp" > "$out"
    echo "wrote $out"
    exit 0
fi

if [ "$mode" = "profile" ]; then
    # Capture cpu/mem pprof profiles of the sweep benchmarks — the
    # heaviest end-to-end paths — so a regression flagged by the gate can
    # be diagnosed from the CI artifacts without a local repro.
    outdir="${1:-bench-profiles}"
    pattern="${BENCH:-SweepShared|TransientSweepBatched}"
    mkdir -p "$outdir"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 \
        -cpuprofile "$outdir/cpu.pprof" -memprofile "$outdir/mem.pprof" \
        -o "$outdir/bench.test" .
    echo "wrote $outdir/cpu.pprof $outdir/mem.pprof (binary: $outdir/bench.test)"
    exit 0
fi

# --- check mode: the benchmark-regression gate ---

base="${1:-$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)}"
if [ -z "$base" ] || [ ! -f "$base" ]; then
    echo "bench-gate: no BENCH_*.json snapshot to check against" >&2
    exit 2
fi
echo "bench-gate: checking against $base (tolerance ${tolerance}x, benchtime $benchtime)"

# The -bench pattern matches the top-level benchmark names (sub-benchmark
# names like PoolStudySweep/sequential select their parent); comparison
# below still happens per full pinned name.
names="$(awk -F'"' '/"name":/ {split($4, a, "/"); print a[1]}' "$base" | sort -u)"
if [ -z "$names" ]; then
    echo "bench-gate: $base pins no benchmarks" >&2
    exit 2
fi
pattern="^($(printf '%s' "$names" | tr '\n' '|'))$"

tmp="$(mktemp)"
fresh="${BENCH_GATE_OUT:-bench-gate.json}"
count="${BENCH_GATE_COUNT:-3}"
trap 'rm -f "$tmp"' EXIT
# -count 3, fastest sample per benchmark: a single descheduled run on a
# noisy shared runner must not trip the gate.
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" ./internal/mat ./internal/fault . | tee "$tmp"
emit_json "$benchtime" < "$tmp" > "$fresh"
echo "wrote $fresh"

# Gate ns/op, bytes/op and allocs/op per pinned benchmark at the same
# tolerance. Allocation metrics are gated only when the baseline
# allocates per operation (>= 4 allocs/op): for steady-state zero-alloc
# benchmarks the reported B/op is one-time setup amortized over b.N,
# which scales with benchtime and machine speed rather than with the
# code under test. Those hot paths pin themselves through dedicated
# AllocsPerRun guard tests; the gate catches the sweeps'
# bulk-allocation regressions, whose per-op counts are deterministic.
awk -F'"' -v tol="$tolerance" '
function metric(line, key,   rest) {
    rest = line
    if (!sub(".*\"" key "\":", "", rest)) return ""
    sub(/[,}].*/, "", rest)
    return rest
}
FNR == 1 { file++ }
/"name":/ {
    name = $4
    if (file == 1) {
        old_ns[name] = metric($0, "ns_per_op") + 0
        old_b[name]  = metric($0, "bytes_per_op")
        old_a[name]  = metric($0, "allocs_per_op")
    } else {
        new_ns[name] = metric($0, "ns_per_op") + 0
        new_b[name]  = metric($0, "bytes_per_op")
        new_a[name]  = metric($0, "allocs_per_op")
    }
}
function gate(name, unit, oldv, newv,   ratio, status) {
    ratio = (oldv > 0) ? newv / oldv : 1
    status = (ratio > tol) ? "FAIL" : "ok"
    printf("bench-gate: %-4s %-45s %14.0f -> %14.0f %s (%.2fx)\n", status, name, oldv, newv, unit, ratio)
    if (ratio > tol) {
        fails[nfail++] = sprintf("%s: %.0f -> %.0f %s (%.2fx slower, tolerance %.2fx)",
                                 name, oldv, newv, unit, ratio, tol)
        return 1
    }
    return 0
}
END {
    bad = 0
    for (name in old_ns) {
        if (!(name in new_ns)) {
            printf("bench-gate: FAIL %-45s pinned in snapshot but not rerun\n", name)
            fails[nfail++] = name ": pinned in snapshot but not rerun"
            bad++
            continue
        }
        bad += gate(name, "ns/op", old_ns[name], new_ns[name])
        if (old_a[name] != "" && new_a[name] != "" && old_a[name] + 0 >= 4) {
            if (old_b[name] != "" && new_b[name] != "")
                bad += gate(name, "B/op", old_b[name] + 0, new_b[name] + 0)
            bad += gate(name, "allocs/op", old_a[name] + 0, new_a[name] + 0)
        }
    }
    # Planner speedup gate: when the snapshot pins both sweep variants,
    # the fresh run must keep the cost-based planner >= 1.2x faster than
    # the unplanned per-scenario sweep (the PR-9 acceptance floor).
    if (("BenchmarkPlannedSweep" in new_ns) && ("BenchmarkUnplannedSweep" in new_ns) && new_ns["BenchmarkPlannedSweep"] > 0) {
        speedup = new_ns["BenchmarkUnplannedSweep"] / new_ns["BenchmarkPlannedSweep"]
        printf("bench-gate: planned sweep speedup %.2fx (floor 1.20x)\n", speedup)
        if (speedup < 1.2) {
            printf("bench-gate: FAILED: planned sweep only %.2fx faster than unplanned (floor 1.20x)\n", speedup)
            bad++
        }
    }
    if (bad > 0) {
        printf("bench-gate: FAILED: %d metric(s) regressed past the %.2fx tolerance:\n", bad, tol)
        for (i = 0; i < nfail; i++)
            printf("bench-gate:   %s\n", fails[i])
        exit 1
    }
    print "bench-gate: all pinned benchmarks within tolerance"
}' "$base" "$fresh"
